// Observability layer: TraceRecorder semantics (rings, sampling, masks,
// histograms), the exporters, and — the tentpole contract — the causal chains
// the fleet and cluster thread through their trace events: session draw ->
// job admission -> quarantine -> CampaignAlert -> gossip publish ->
// cross-shard delivery -> remote tighten -> rotation. Everything runs on
// ManualClock with fixed seeds, so two identical runs export byte-identical
// Chrome traces (the golden-determinism test pins exactly that).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/telemetry.h"
#include "fleet/fleet.h"
#include "fleet/telemetry.h"
#include "fleet_test_harness.h"
#include "obs/exporters.h"
#include "obs/trace.h"

namespace nv::obs {
namespace {

using fleet::FleetConfig;
using fleet::ManualClock;
using fleet::VariantFleet;
using fleet::harness::poison_job;
using fleet::harness::uid_spec;
using fleet::harness::wait_until;

using std::chrono::milliseconds;

fleet::FleetJob clean_job() {
  return [](core::NVariantSystem&) {
    core::RunReport report;
    report.completed = true;
    return report;
  };
}

/// Events of one kind across every track.
std::vector<TraceEvent> events_of(const TraceRecorder& recorder, TraceEventKind kind) {
  std::vector<TraceEvent> out;
  for (const auto& event : recorder.all_events()) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

bool any_span_equals(const std::vector<TraceEvent>& events, std::uint64_t span) {
  return std::any_of(events.begin(), events.end(),
                     [span](const TraceEvent& e) { return e.span == span; });
}

// --- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorderTest, TracksAreDenseStableAndFindOrCreate) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.track_names(), (std::vector<std::string>{"trace"}));
  const auto a = recorder.track("fleet.ops");
  const auto b = recorder.track("fleet.lane0");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(recorder.track("fleet.ops"), a);  // find, not create
  EXPECT_EQ(recorder.track_names(),
            (std::vector<std::string>{"trace", "fleet.ops", "fleet.lane0"}));
}

TEST(TraceRecorderTest, TimestampsComeFromTheInjectedClock) {
  ManualClock clock;
  TraceRecorder recorder({}, clock.fn());
  const auto track = recorder.track("t");
  recorder.record(track, TraceEventKind::kJobAdmitted, 0, 0, 1);
  clock.advance(milliseconds(3));
  recorder.record(track, TraceEventKind::kJobStarted, 0, 0, 2);
  const auto events = recorder.events(track);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at_us, 0);
  EXPECT_EQ(events[1].at_us, 3'000);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[1].a, 2u);
}

TEST(TraceRecorderTest, RingOverflowKeepsNewestAndCountsDrops) {
  TraceConfig config;
  config.ring_capacity = 4;
  TraceRecorder recorder(config);
  const auto track = recorder.track("ring");
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record(track, TraceEventKind::kJobAdmitted, 0, 0, i);
  }
  const auto events = recorder.events(track);
  ASSERT_EQ(events.size(), 4u);  // newest four retained, oldest first
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].a, 6 + i);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_EQ(recorder.recorded(), 10u);
}

TEST(TraceRecorderTest, KindMaskAndMasterSwitchSuppressRecording) {
  TraceConfig config;
  config.kind_mask = TraceConfig::kind_bit(TraceEventKind::kQuarantine);
  TraceRecorder recorder(config);
  const auto track = recorder.track("masked");
  recorder.record(track, TraceEventKind::kJobAdmitted);  // masked out
  recorder.record(track, TraceEventKind::kQuarantine);
  EXPECT_FALSE(recorder.enabled(TraceEventKind::kJobAdmitted));
  EXPECT_TRUE(recorder.enabled(TraceEventKind::kQuarantine));
  ASSERT_EQ(recorder.events(track).size(), 1u);
  EXPECT_EQ(recorder.events(track)[0].kind, TraceEventKind::kQuarantine);

  TraceRecorder off(TraceConfig::disabled());
  const auto t = off.track("off");
  off.record(t, TraceEventKind::kQuarantine);
  EXPECT_EQ(off.recorded(), 0u);
  EXPECT_FALSE(off.enabled(TraceEventKind::kQuarantine));
}

TEST(TraceRecorderTest, SyscallRoundsSampleAtThePerTrackStride) {
  TraceConfig config;
  config.syscall_round_sample = 4;
  TraceRecorder recorder(config);
  const auto a = recorder.track("lane0");
  const auto b = recorder.track("lane1");
  // sample_round() is the hot-path gate: it advances the per-track counter
  // and only the 1-in-Nth call says "keep" — the call site then records.
  for (int i = 0; i < 8; ++i) {
    if (recorder.sample_round(a)) recorder.record(a, TraceEventKind::kSyscallRound, 0, 0, i);
  }
  for (int i = 0; i < 3; ++i) {
    if (recorder.sample_round(b)) recorder.record(b, TraceEventKind::kSyscallRound, 0, 0, i);
  }
  // Stride counts per track: lane0 keeps rounds 0 and 4; lane1's counter is
  // its own, so its round 0 is kept too.
  ASSERT_EQ(recorder.events(a).size(), 2u);
  EXPECT_EQ(recorder.events(a)[0].a, 0u);
  EXPECT_EQ(recorder.events(a)[1].a, 4u);
  ASSERT_EQ(recorder.events(b).size(), 1u);

  TraceConfig zero = config;
  zero.syscall_round_sample = 0;  // 0 disables the kind entirely
  TraceRecorder none(zero);
  const auto t = none.track("lane");
  EXPECT_FALSE(none.sample_round(t));
  TraceRecorder off(TraceConfig::disabled());
  EXPECT_FALSE(off.sample_round(off.track("lane")));
}

TEST(TraceRecorderTest, KindMaskAndRoundSampleRearmAtRuntime) {
  // PR 7 follow-on: the mask and the sampling stride are LIVE knobs, not
  // construction-time constants — a fleet drops the stride to 1 when a
  // campaign alert fires so the rounds around an active attack are all kept.
  ManualClock clock;
  TraceConfig config;
  config.syscall_round_sample = 4;
  TraceRecorder recorder(config, clock.fn());
  const auto track = recorder.track("lane0");
  for (int i = 0; i < 4; ++i) {
    if (recorder.sample_round(track)) recorder.record(track, TraceEventKind::kSyscallRound);
    clock.advance(milliseconds(1));
  }
  ASSERT_EQ(recorder.events(track).size(), 1u);  // stride 4 kept round 0 only

  recorder.set_syscall_round_sample(1);  // the campaign-alert escalation
  EXPECT_EQ(recorder.syscall_round_sample(), 1u);
  for (int i = 0; i < 4; ++i) {
    if (recorder.sample_round(track)) recorder.record(track, TraceEventKind::kSyscallRound);
    clock.advance(milliseconds(1));
  }
  EXPECT_EQ(recorder.events(track).size(), 5u);  // every subsequent round kept

  // The kind mask re-arms the same way: masking the kind out mid-run stops
  // recording without touching the recorder's master switch.
  recorder.set_kind_mask(TraceConfig::kind_bit(TraceEventKind::kQuarantine));
  EXPECT_FALSE(recorder.enabled(TraceEventKind::kSyscallRound));
  EXPECT_FALSE(recorder.sample_round(track));
  recorder.record(track, TraceEventKind::kSyscallRound);
  EXPECT_EQ(recorder.events(track).size(), 5u);
  recorder.set_kind_mask(~std::uint64_t{0});
  EXPECT_TRUE(recorder.enabled(TraceEventKind::kSyscallRound));
  EXPECT_TRUE(recorder.sample_round(track));
}

TEST(ObsExportersTest, PrometheusLabelValuesAreEscaped) {
  // Exposition format: backslash, double-quote, and newline in a label VALUE
  // must be escaped — an operator-supplied instance name must not be able to
  // break the series syntax.
  EXPECT_EQ(prometheus_label_escape(R"(plain_value-1)"), "plain_value-1");
  EXPECT_EQ(prometheus_label_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_escape("a\nb"), "a\\nb");

  fleet::FleetSnapshot snap;
  snap.jobs_submitted = 2;
  const std::string text =
      expose_metrics(snap, nullptr, "nv_fleet", "host\"1\\z\nq");
  EXPECT_NE(text.find("nv_fleet_jobs_submitted{instance=\"host\\\"1\\\\z\\nq\"} 2"),
            std::string::npos);
  // No raw quote or newline may survive inside the label value.
  EXPECT_EQ(text.find("host\"1"), std::string::npos);
  EXPECT_EQ(text.find("\nq\"}"), std::string::npos);
}

TEST(ObsExportersTest, PipelineCountersAppearInFleetExposition) {
  fleet::FleetSnapshot snap;
  snap.syscall_rounds = 9;
  snap.syscall_batches = 4;
  snap.async_completions = 120;
  const std::string text = expose_metrics(snap);
  EXPECT_NE(text.find("nv_fleet_syscall_rounds 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nv_fleet_syscall_batches counter"), std::string::npos);
  EXPECT_NE(text.find("nv_fleet_syscall_batches 4"), std::string::npos);
  EXPECT_NE(text.find("nv_fleet_async_completions 120"), std::string::npos);
}

TEST(TraceRecorderTest, OutOfRangeTrackAliasesTheOverflowTrack) {
  TraceRecorder recorder;
  recorder.record(999, TraceEventKind::kJobAdmitted, 0, 0, 42);
  const auto events = recorder.events(0);  // track 0 = "trace", the alias
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].a, 42u);
}

TEST(TraceRecorderTest, SpansAreUniqueAndNeverZero) {
  TraceRecorder recorder;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const auto span = recorder.new_span();
    EXPECT_NE(span, 0u);
    EXPECT_TRUE(seen.insert(span).second);
  }
}

TEST(TraceRecorderTest, HistogramsBucketObservationsLockFree) {
  TraceRecorder recorder;
  const auto id = recorder.histogram("lead_us.input");
  EXPECT_EQ(recorder.histogram("lead_us.input"), id);  // find-or-create
  recorder.observe(id, 1.5);
  recorder.observe(id, 30.0);
  recorder.observe(id, 2'000'000.0);  // beyond the last bound: +Inf bucket
  const auto snaps = recorder.histograms();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "lead_us.input");
  EXPECT_EQ(snaps[0].count, 3u);
  EXPECT_DOUBLE_EQ(snaps[0].sum, 2'000'031.5);
  EXPECT_EQ(snaps[0].buckets[1], 1u);   // 1.5 -> le=2
  EXPECT_EQ(snaps[0].buckets[5], 1u);   // 30 -> le=50
  EXPECT_EQ(snaps[0].buckets[16], 1u);  // +Inf
}

// --- Fleet instrumentation ---------------------------------------------------

FleetConfig traced_fleet(ManualClock& clock, std::shared_ptr<TraceRecorder> recorder,
                         unsigned pool_size = 2) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = pool_size;
  config.queue_capacity = 16;
  config.seed = 0xD15EA5E;
  config.work_stealing = false;
  config.campaign.threshold = 3;
  config.campaign.window = milliseconds(10'000);
  config.campaign.rotate_fleet_on_alert = true;
  config.adaptive.enabled = true;
  config.adaptive.arm_rotation = false;
  config.adaptive.tightened_rotation_interval = milliseconds(0);
  config.adaptive.quiet_period = milliseconds(60'000);
  config.clock = clock.fn();
  config.trace = std::move(recorder);
  return config;
}

TEST(TraceFleetTest, CampaignReadsAsOneCausalChainFromDrawToRotation) {
  ManualClock clock;
  auto recorder = std::make_shared<TraceRecorder>(TraceConfig{}, clock.fn());
  VariantFleet fleet(traced_fleet(clock, recorder));

  std::vector<fleet::JobOutcome> outcomes;
  for (int i = 0; i < 3; ++i) {
    outcomes.push_back(fleet.submit(poison_job("trace chain probe")).get());
  }

  // Every quarantined job's span threads admission -> start -> quarantine,
  // and the start/quarantine point back at a recorded session draw.
  const auto draws = events_of(*recorder, TraceEventKind::kSessionDraw);
  const auto admits = events_of(*recorder, TraceEventKind::kJobAdmitted);
  const auto starts = events_of(*recorder, TraceEventKind::kJobStarted);
  const auto quarantines = events_of(*recorder, TraceEventKind::kQuarantine);
  const auto respawns = events_of(*recorder, TraceEventKind::kRespawn);
  ASSERT_EQ(quarantines.size(), 3u);
  for (const auto& outcome : outcomes) {
    ASSERT_NE(outcome.trace_span, 0u);
    EXPECT_TRUE(any_span_equals(admits, outcome.trace_span));
    EXPECT_TRUE(any_span_equals(starts, outcome.trace_span));
    EXPECT_TRUE(any_span_equals(quarantines, outcome.trace_span));
  }
  for (const auto& start : starts) {
    EXPECT_TRUE(any_span_equals(draws, start.parent)) << "start not caused by a draw";
  }
  for (const auto& quarantine : quarantines) {
    EXPECT_TRUE(any_span_equals(draws, quarantine.parent));
  }
  // Each respawn is caused by exactly one of the quarantining jobs and
  // DEFINES the replacement session's draw span (the factory records the
  // same span). all_events() groups by lane track, so match as a set.
  ASSERT_EQ(respawns.size(), 3u);
  std::set<std::uint64_t> respawn_parents;
  for (const auto& respawn : respawns) {
    respawn_parents.insert(respawn.parent);
    EXPECT_TRUE(any_span_equals(draws, respawn.span));
  }
  std::set<std::uint64_t> job_spans;
  for (const auto& outcome : outcomes) job_spans.insert(outcome.trace_span);
  EXPECT_EQ(respawn_parents, job_spans);

  // The third incident crossed the threshold: ONE alert, parented to that
  // job's span, with the tighten and the escalation rotation hanging off it.
  const auto alerts = events_of(*recorder, TraceEventKind::kCampaignAlert);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_NE(alerts[0].span, 0u);
  EXPECT_EQ(alerts[0].parent, outcomes[2].trace_span);
  EXPECT_EQ(alerts[0].b, 3u);  // three member quarantines

  const auto tightens = events_of(*recorder, TraceEventKind::kPolicyTightened);
  ASSERT_EQ(tightens.size(), 1u);
  EXPECT_EQ(tightens[0].parent, alerts[0].span);

  // The rotation the alert requested resolves lazily before the flagged
  // lane's next job; its kRotation event must close the chain to the alert.
  for (int i = 0; i < 8 && fleet.telemetry().snapshot().sessions_rotated == 0; ++i) {
    (void)fleet.submit(clean_job()).get();
  }
  ASSERT_GE(fleet.telemetry().snapshot().sessions_rotated, 1u);
  const auto rotations = events_of(*recorder, TraceEventKind::kRotation);
  ASSERT_GE(rotations.size(), 1u);
  EXPECT_EQ(rotations[0].parent, alerts[0].span);
  EXPECT_EQ(rotations[0].b, 0u);  // lazy rotation, not deadline-forced
}

TEST(TraceFleetTest, GoldenManualClockRunsExportByteIdenticalTraces) {
  // THE determinism contract: same seed, same ManualClock, same job script =>
  // the exported Chrome trace is byte-identical, run after run. One lane and
  // sequential .get()s make every interleaving deterministic.
  const auto run_once = [] {
    ManualClock clock;
    auto recorder = std::make_shared<TraceRecorder>(TraceConfig{}, clock.fn());
    VariantFleet fleet(traced_fleet(clock, recorder, /*pool_size=*/1));
    (void)fleet.submit(clean_job()).get();
    for (int i = 0; i < 3; ++i) {
      (void)fleet.submit(poison_job("golden storm")).get();
      clock.advance(milliseconds(5));
    }
    (void)fleet.submit(clean_job()).get();
    fleet.shutdown();
    return to_chrome_trace(*recorder);
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_NE(first.find("campaign_alert"), std::string::npos);
  EXPECT_NE(first.find("quarantine"), std::string::npos);
}

TEST(TraceFleetTest, RingDropsSurfaceThroughFleetTelemetry) {
  ManualClock clock;
  TraceConfig config;
  config.ring_capacity = 2;  // force overflow on the ops track immediately
  auto recorder = std::make_shared<TraceRecorder>(config, clock.fn());
  VariantFleet fleet(traced_fleet(clock, recorder));
  for (int i = 0; i < 8; ++i) (void)fleet.submit(clean_job()).get();
  EXPECT_GT(recorder->dropped(), 0u);
  EXPECT_EQ(fleet.telemetry().snapshot().trace_drops, recorder->dropped());
}

// --- Cluster instrumentation -------------------------------------------------

cluster::ClusterConfig traced_cluster(ManualClock& clock,
                                      std::shared_ptr<TraceRecorder> recorder,
                                      unsigned shards = 3) {
  cluster::ClusterConfig config;
  config.shards = shards;
  config.trace = std::move(recorder);
  config.shard.spec = uid_spec();
  config.shard.pool_size = 2;
  config.shard.queue_capacity = 8;
  config.shard.seed = 0xC1057E4;
  config.shard.work_stealing = false;
  config.shard.campaign.threshold = 3;
  config.shard.campaign.window = milliseconds(10'000);
  config.shard.campaign.rotate_fleet_on_alert = false;
  config.shard.adaptive.enabled = true;
  config.shard.adaptive.arm_rotation = false;
  config.shard.adaptive.tightened_rotation_interval = milliseconds(0);
  config.shard.adaptive.quiet_period = milliseconds(60'000);
  config.shard.clock = clock.fn();
  return config;
}

TEST(TraceClusterTest, RemoteTightensCarryTheOriginShardsAlertSpan) {
  // K = 3: the campaign on shard 0 must read as ONE chain across the whole
  // cluster — alert -> gossip publish -> two deliveries -> two remote
  // tightens, every hop parented to the origin's alert span.
  ManualClock clock;
  auto recorder = std::make_shared<TraceRecorder>(TraceConfig{}, clock.fn());
  cluster::FleetCluster cluster(traced_cluster(clock, recorder));
  for (int i = 0; i < 3; ++i) {
    (void)cluster.submit_to(0, poison_job("cross-shard campaign")).get();
  }

  const auto alerts = events_of(*recorder, TraceEventKind::kCampaignAlert);
  ASSERT_EQ(alerts.size(), 1u);
  const std::uint64_t alert_span = alerts[0].span;
  ASSERT_NE(alert_span, 0u);
  const auto names = recorder->track_names();
  EXPECT_EQ(names.at(alerts[0].track), "shard0.ops");

  const auto publishes = events_of(*recorder, TraceEventKind::kGossipPublish);
  ASSERT_EQ(publishes.size(), 1u);
  EXPECT_EQ(publishes[0].parent, alert_span);
  EXPECT_EQ(publishes[0].a, 0u);  // origin shard

  const auto delivers = events_of(*recorder, TraceEventKind::kGossipDeliver);
  ASSERT_EQ(delivers.size(), 2u);
  std::set<std::uint64_t> warned;
  for (const auto& deliver : delivers) {
    EXPECT_EQ(deliver.parent, alert_span);
    EXPECT_EQ(deliver.a, 0u);  // from shard 0
    warned.insert(deliver.b);
  }
  EXPECT_EQ(warned, (std::set<std::uint64_t>{1, 2}));

  const auto tightens = events_of(*recorder, TraceEventKind::kRemoteTighten);
  ASSERT_EQ(tightens.size(), 2u);
  std::set<std::string> tightened_tracks;
  for (const auto& tighten : tightens) {
    EXPECT_EQ(tighten.parent, alert_span);
    tightened_tracks.insert(names.at(tighten.track));
  }
  EXPECT_EQ(tightened_tracks, (std::set<std::string>{"shard1.ops", "shard2.ops"}));
}

TEST(TraceClusterTest, TickPumpsEnforcesAndSweepsTightenedShards) {
  ManualClock clock;
  auto recorder = std::make_shared<TraceRecorder>(TraceConfig{}, clock.fn());
  auto config = traced_cluster(clock, recorder);
  config.sweep_interval = milliseconds(100);
  cluster::FleetCluster cluster(config);

  // Quiet tick: interval not yet elapsed, nothing tightened, nothing swept.
  const auto quiet = cluster.tick();
  EXPECT_EQ(quiet.tick, 1u);
  EXPECT_FALSE(quiet.swept);
  EXPECT_TRUE(quiet.sweeps.empty());
  EXPECT_EQ(quiet.forced_rotations, 0u);

  // Campaign on shard 0 tightens every shard (gossip); once the interval
  // elapses the next tick sweeps ALL of them — flagging their lanes for
  // rotation and redrawing their network identities.
  for (int i = 0; i < 3; ++i) {
    (void)cluster.submit_to(0, poison_job("sweep me")).get();
  }
  clock.advance(milliseconds(100));
  const auto swept = cluster.tick();
  EXPECT_EQ(swept.tick, 2u);
  EXPECT_TRUE(swept.swept);
  ASSERT_EQ(swept.sweeps.size(), 3u);
  for (const auto& sweep : swept.sweeps) {
    EXPECT_EQ(sweep.lanes_flagged, 2u) << "shard " << sweep.shard;
    EXPECT_TRUE(sweep.network_rotated) << "shard " << sweep.shard;
  }
  EXPECT_EQ(cluster.snapshot().network_rotations, 3u);

  const auto ticks = events_of(*recorder, TraceEventKind::kClusterTick);
  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_EQ(ticks[0].a, 1u);
  EXPECT_EQ(ticks[0].detail, "");
  EXPECT_EQ(ticks[1].a, 2u);
  EXPECT_EQ(ticks[1].detail, "swept 3 shards");
}

// --- ShardRouter health cache ------------------------------------------------

TEST(ShardRouterCacheTest, RoutingDoesNotResampleShardsWhoseEpochIsUnchanged) {
  // The satellite regression contract: per-submission routing cost is O(K)
  // atomic reads — the mutexed health walk happens ONLY when a shard's
  // health epoch moved (first contact, quarantine respawn, drain).
  ManualClock clock;
  auto recorder = std::make_shared<TraceRecorder>(TraceConfig{}, clock.fn());
  cluster::FleetCluster cluster(traced_cluster(clock, recorder, /*shards=*/2));
  EXPECT_EQ(cluster.snapshot().health_resamples, 0u);

  // First routed submission: sentinel epochs force one full sample (K = 2).
  (void)cluster.submit(clean_job()).get();
  EXPECT_EQ(cluster.snapshot().health_resamples, 2u);

  // Clean traffic changes only queue depths (served lock-free from the
  // hint): five more routed submissions re-sample NOTHING.
  for (int i = 0; i < 5; ++i) (void)cluster.submit(clean_job()).get();
  EXPECT_EQ(cluster.snapshot().health_resamples, 2u);

  // A quarantine respawn on shard 0 moves ITS epoch (the keyspace gauge
  // refresh); the next routed submission re-samples exactly that one shard.
  (void)cluster.submit_to(0, poison_job("cache invalidation probe")).get();
  (void)cluster.submit(clean_job()).get();
  EXPECT_EQ(cluster.snapshot().health_resamples, 3u);

  // And the router left its decisions in the trace.
  EXPECT_FALSE(events_of(*recorder, TraceEventKind::kRouteDecision).empty());
}

// --- Exporters ---------------------------------------------------------------

TEST(ObsExportersTest, ChromeTraceEmitsMetadataSlicesAndCausalityFlows) {
  ManualClock clock;
  TraceRecorder recorder({}, clock.fn());
  const auto track = recorder.track("lane0");
  recorder.record(track, TraceEventKind::kSessionDraw, /*span=*/3, 0, 7, 0, "uid-xor{mask=0x1}");
  clock.advance(milliseconds(2));
  recorder.record(track, TraceEventKind::kJobStarted, /*span=*/9, /*parent=*/3, 1, 7);

  const std::string json = to_chrome_trace(recorder);
  EXPECT_NE(json.find("\"otherData\":{\"recorded\":2,\"dropped\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"lane0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"session_draw\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"uid-xor{mask=0x1}\""), std::string::npos);
  // The second slice lands 2ms later and points back at span 3.
  EXPECT_NE(json.find("\"ts\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"span\":9,\"parent\":3"), std::string::npos);
  // Flow binding: span 3's definition starts a flow ("s"); its dependant
  // steps it ("t").
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
}

TEST(ObsExportersTest, FleetMetricsExposeEverySnapshotFieldAndHistograms) {
  fleet::FleetSnapshot snap;
  snap.jobs_submitted = 11;
  snap.trace_drops = 4;
  TraceRecorder recorder;
  recorder.observe(recorder.histogram("lead_us.input"), 30.0);

  const std::string text = expose_metrics(snap, &recorder);
  EXPECT_NE(text.find("# TYPE nv_fleet_jobs_submitted counter"), std::string::npos);
  EXPECT_NE(text.find("nv_fleet_jobs_submitted 11"), std::string::npos);
  EXPECT_NE(text.find("nv_fleet_trace_drops 4"), std::string::npos);
  EXPECT_NE(text.find("nv_fleet_latency_p95_us"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nv_trace_lead_us_input histogram"), std::string::npos);
  EXPECT_NE(text.find("nv_trace_lead_us_input_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("nv_trace_lead_us_input_count 1"), std::string::npos);
  // Without a recorder the histogram section simply disappears.
  EXPECT_EQ(expose_metrics(snap).find("nv_trace_"), std::string::npos);
}

TEST(ObsExportersTest, ClusterMetricsExposeAggregatesAndPerShardSeries) {
  cluster::ClusterSnapshot snap;
  snap.shards = 2;
  snap.jobs_routed = 6;
  snap.health_resamples = 3;
  cluster::ShardSnapshot view;
  view.shard = 1;
  view.fleet.jobs_completed = 5;
  snap.shard_views.push_back(view);

  const std::string text = expose_metrics(snap);
  EXPECT_NE(text.find("nv_cluster_shards 2"), std::string::npos);
  EXPECT_NE(text.find("nv_cluster_jobs_routed 6"), std::string::npos);
  EXPECT_NE(text.find("nv_cluster_health_resamples 3"), std::string::npos);
  EXPECT_NE(text.find("nv_fleet_jobs_completed{shard=\"1\"} 5"), std::string::npos);
  // One # TYPE header per metric name, even with per-shard label series.
  EXPECT_EQ(text.find("# TYPE nv_fleet_jobs_completed counter"),
            text.rfind("# TYPE nv_fleet_jobs_completed counter"));
}

}  // namespace
}  // namespace nv::obs

// Failure injection and edge cases for the MVEE: guest exceptions, tag
// faults, reuse after attack, composition of variations, and the §3.1
// scheduling limitation reproduced as a test.
#include <gtest/gtest.h>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "test_helpers.h"
#include "vkernel/vm.h"

namespace nv {
namespace {

using core::NVariantSystem;
using testing::LambdaGuest;

std::unique_ptr<NVariantSystem> fast_system(
    std::initializer_list<std::string_view> variation_names = {},
    std::initializer_list<std::string> unshared = {}, unsigned n_variants = 2) {
  return testing::build_system(std::chrono::milliseconds(500), n_variants, variation_names,
                               unshared);
}

void seed_etc(NVariantSystem& system) {
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system.fs().mkdir_p("/etc", root));
  ASSERT_TRUE(system.fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root));
  ASSERT_TRUE(system.fs().write_file("/etc/group", "root:x:0:\n", root));
}

TEST(FailureInjection, GuestExceptionBecomesGuestErrorAlarm) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    if (ctx.variant() == 1) throw std::runtime_error("injected guest bug");
    (void)ctx.getpid();
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kGuestError);
  EXPECT_EQ(report.alarm->variant, 1u);
  EXPECT_NE(report.alarm->detail.find("injected guest bug"), std::string::npos);
}

TEST(FailureInjection, TagFaultAlarmFromInjectedCode) {
  const auto system_owner = fast_system({"instruction-tagging"});
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    // Both variants store the SAME injected bytes (tagged for variant 0's
    // tag) and execute them: variant 1 must trap.
    vkernel::VmProgram payload;
    payload.load_imm(0, 1).halt();
    const auto image = payload.assemble(0xA0);
    const auto base = ctx.alloc(image.size());
    ctx.memory().store_bytes(base, image);
    (void)ctx.execute_code(base);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kTagFault);
  EXPECT_EQ(report.alarm->variant, 1u);
}

TEST(FailureInjection, TrustedTaggedCodeRunsInBothVariants) {
  const auto system_owner = fast_system({"instruction-tagging"});
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    // Trusted load path: each variant tags the code with ITS OWN tag.
    vkernel::VmProgram program;
    program.load_imm(0, 41).load_imm(1, 1).add(0, 1).emit().halt();
    const auto image = program.assemble(ctx.config().code_tag);
    const auto base = ctx.alloc(image.size());
    ctx.memory().store_bytes(base, image);
    const auto result = ctx.execute_code(base);
    EXPECT_EQ(result.output, (std::vector<std::uint32_t>{42}));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(FailureInjection, SystemReusableAfterDetectedAttack) {
  const auto system_owner = fast_system({"uid-xor"});
  auto& system = *system_owner;
  seed_etc(system);

  LambdaGuest attacked([](guest::GuestContext& ctx) {
    (void)ctx.uid_value(0);
    ctx.exit(0);
  });
  const auto first = guest::run_nvariant(system, attacked);
  EXPECT_TRUE(first.attack_detected);

  // The same system object runs a clean workload afterwards.
  LambdaGuest clean([](guest::GuestContext& ctx) {
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(0));
    ctx.exit(0);
  });
  const auto second = guest::run_nvariant(system, clean);
  EXPECT_TRUE(second.completed);
  EXPECT_FALSE(second.attack_detected);
}

TEST(FailureInjection, CompositionOfThreeVariations) {
  const auto system_owner =
      fast_system({"uid-xor", "address-partitioning", "instruction-tagging"});
  auto& system = *system_owner;
  seed_etc(system);
  LambdaGuest guest([](guest::GuestContext& ctx) {
    // UID path works.
    EXPECT_EQ(ctx.seteuid(ctx.uid_const(1000)), os::Errno::kOk);
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(1000));
    // Memory is partitioned.
    const auto addr = ctx.alloc(16);
    if (ctx.variant() == 1) {
      EXPECT_GE(addr, 0x80000000ULL);
    }
    // Tagged code executes.
    vkernel::VmProgram program;
    program.load_imm(0, 9).emit().halt();
    const auto image = program.assemble(ctx.config().code_tag);
    const auto base = ctx.alloc(image.size());
    ctx.memory().store_bytes(base, image);
    EXPECT_EQ(ctx.execute_code(base).output, (std::vector<std::uint32_t>{9}));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
}

TEST(FailureInjection, SchedulingDivergenceLimitationReproduced) {
  // §3.1: "if a signal is delivered to variants at different points in their
  // execution, their behaviors may diverge. This leads to a false attack
  // detection." We model an unsynchronized asynchronous event (a per-variant
  // race) influencing control flow: the framework — correctly per its rules,
  // wrongly per intent — raises an alarm.
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    // Each variant observes a different "signal arrival point".
    const bool signal_seen_early = ctx.variant() == 0;
    if (signal_seen_early) {
      (void)ctx.gettime();  // extra syscall on one path only
    }
    (void)ctx.getpid();
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);  // false positive, faithfully reproduced
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kSyscallMismatch);
}

TEST(FailureInjection, DoubleStopIsSafe) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) { ctx.exit(0); });
  guest::launch_nvariant(system, guest);
  const auto first = system.stop();
  EXPECT_TRUE(first.completed);
  const auto second = system.stop();  // no threads left: harmless
  EXPECT_TRUE(second.completed);
}

TEST(FailureInjection, LaunchWhileRunningThrows) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest server([](guest::GuestContext& ctx) {
    auto sock = ctx.socket();
    ASSERT_TRUE(sock.has_value());
    // stop() may race ahead of us; EINTR from an already-shut-down hub is a
    // clean exit, not a failure.
    if (ctx.bind(*sock, 9191) != os::Errno::kOk) ctx.exit(0);
    while (true) {
      auto conn = ctx.accept(*sock);
      if (!conn) break;
      (void)ctx.close(*conn);
    }
    ctx.exit(0);
  });
  guest::launch_nvariant(system, server);
  LambdaGuest other([](guest::GuestContext& ctx) { ctx.exit(0); });
  EXPECT_THROW(guest::launch_nvariant(system, other), std::logic_error);
  (void)system.stop();
}

TEST(FailureInjection, AlarmCallbackFiresOnDetection) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  std::vector<core::AlarmKind> seen;
  system.monitor().set_alarm_callback(
      [&](const core::Alarm& alarm) { seen.push_back(alarm.kind); });
  LambdaGuest guest([](guest::GuestContext& ctx) {
    (void)ctx.cond_chk(ctx.variant() == 0);
    ctx.exit(0);
  });
  (void)guest::run_nvariant(system, guest);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), core::AlarmKind::kConditionMismatch);
}

TEST(FailureInjection, MissingUnsharedVariantFileFailsLoudly) {
  const auto system_owner = fast_system({}, {"/etc/conf"});
  auto& system = *system_owner;
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system.fs().mkdir_p("/etc", root));
  ASSERT_TRUE(system.fs().write_file("/etc/conf", "x", root));
  ASSERT_TRUE(system.fs().write_file("/etc/conf-0", "zero", root));
  // No /etc/conf-1: variant 1's open must fail, and since results are
  // compared... both get their own errno. Variant 0 succeeds, variant 1
  // fails; the guest asserts success and exits differently -> divergence.
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto content = ctx.read_file("/etc/conf");
    ctx.exit(content.has_value() ? 0 : 1);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);  // exit-code mismatch surfaces the hole
}

TEST(FailureInjection, FourVariantLockstep) {
  const auto system_owner = fast_system({"uid-xor"}, {}, 4);
  auto& system = *system_owner;
  seed_etc(system);
  LambdaGuest guest([](guest::GuestContext& ctx) {
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(0));
    EXPECT_EQ(ctx.seteuid(ctx.uid_const(42)), os::Errno::kOk);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_EQ(report.exit_codes.size(), 4u);
}

}  // namespace
}  // namespace nv

// nvlint fixture mini-tree descriptor table (never compiled): kAlpha has an
// explicit batch token, kBeta relies on the default, kGamma has no row.
#include "vkernel/syscalls.h"

namespace fixture {

struct Descriptor {
  Sys no{};
  const char* name = "";
  int batch = 0;
};

constexpr int kBarrier = 0;

constexpr Descriptor row(Sys no, const char* name, int batch = kBarrier) {
  return Descriptor{no, name, batch};
}

constexpr Descriptor kTable[] = {
    row(Sys::kAlpha, "alpha", kBarrier),
    row(Sys::kBeta, "beta"),  // VIOLATION: NV-SYS-BATCH (default BatchPolicy)
    // VIOLATION: NV-SYS-BATCH — Sys::kGamma has no row at all.
};

}  // namespace fixture

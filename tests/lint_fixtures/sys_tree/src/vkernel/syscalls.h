// nvlint fixture mini-tree: a Sys enum whose descriptor table (see the
// sibling syscall_descriptors.cpp) covers kAlpha explicitly, leaves kBeta on
// the row() default, and omits kGamma entirely — the runner asserts
// NV-SYS-BATCH flags kBeta AND kGamma but not kAlpha.
#ifndef NV_TESTS_LINT_FIXTURES_SYS_TREE_SYSCALLS_H
#define NV_TESTS_LINT_FIXTURES_SYS_TREE_SYSCALLS_H

#include <cstdint>

namespace fixture {

enum class Sys : std::uint8_t {
  kAlpha,
  kBeta,
  kGamma,
};

}  // namespace fixture

#endif  // NV_TESTS_LINT_FIXTURES_SYS_TREE_SYSCALLS_H

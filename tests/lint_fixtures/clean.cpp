// nvlint fixture: a file every rule passes — explicit memory orders, a
// consumed (annotated) mutex, no raw clock or entropy. The fixture runner
// asserts nvlint reports NOTHING here.
#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

class CleanFixture {
 public:
  void push(int v) {
    const nv::util::MutexLock lock(mutex_);
    values_.push_back(v);
    pushes_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pushes() const noexcept {
    return pushes_.load(std::memory_order_relaxed);
  }

 private:
  mutable nv::util::Mutex mutex_;
  std::vector<int> values_ NV_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> pushes_{0};
};

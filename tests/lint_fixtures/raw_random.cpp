// nvlint fixture: exactly one NV-RAW-RANDOM violation (std::random_device
// outside the sanctioned seed plumbing). Scanned only by the fixture runner.
#include <random>

unsigned raw_random_fixture() {
  std::random_device entropy;  // VIOLATION: NV-RAW-RANDOM
  return entropy();
}

// nvlint fixture: exactly one NV-MUTEX-GUARD violation — a mutex member no
// annotation consumes. Scanned only by the fixture runner.
#ifndef NV_TESTS_LINT_FIXTURES_UNGUARDED_MUTEX_H
#define NV_TESTS_LINT_FIXTURES_UNGUARDED_MUTEX_H

#include <mutex>
#include <vector>

class UnguardedMutexFixture {
 public:
  void push(int v) {
    const std::scoped_lock lock(mutex_);
    values_.push_back(v);
  }

 private:
  std::mutex mutex_;  // VIOLATION: no NV_GUARDED_BY names this mutex
  std::vector<int> values_;
};

#endif  // NV_TESTS_LINT_FIXTURES_UNGUARDED_MUTEX_H

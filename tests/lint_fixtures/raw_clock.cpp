// nvlint fixture: exactly one NV-RAW-CLOCK violation (a raw steady_clock
// read instead of an injected ClockFn). Scanned only by the fixture runner.
#include <chrono>

long long raw_clock_fixture() {
  const auto t = std::chrono::steady_clock::now();  // VIOLATION: NV-RAW-CLOCK
  return t.time_since_epoch().count();
}

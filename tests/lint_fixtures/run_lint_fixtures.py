#!/usr/bin/env python3
"""Self-test for tools/nvlint.py, wired into ctest as `nvlint_fixtures`.

Asserts that every one-violation-per-file fixture in this directory produces
exactly the finding it stages, that the clean fixture and the real tree
produce nothing, and that the allowlist machinery suppresses what it claims
to. A linter nobody tests rots into either noise or silence; this keeps both
failure modes loud.

Usage: run_lint_fixtures.py [repo_root]   (default: two levels up)
"""
import pathlib
import subprocess
import sys

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent
ROOT = pathlib.Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else FIXTURE_DIR.parent.parent
NVLINT = ROOT / "tools" / "nvlint.py"

failures = []


def run(*args):
    return subprocess.run([sys.executable, str(NVLINT), *args],
                          capture_output=True, text=True)


def expect(label, proc, exit_code, must_contain=(), must_not_contain=()):
    out = proc.stdout + proc.stderr
    if proc.returncode != exit_code:
        failures.append(f"{label}: expected exit {exit_code}, got {proc.returncode}\n{out}")
        return
    for needle in must_contain:
        if needle not in out:
            failures.append(f"{label}: output lacks {needle!r}\n{out}")
    for needle in must_not_contain:
        if needle in out:
            failures.append(f"{label}: output unexpectedly contains {needle!r}\n{out}")


def fixture(name):
    return (pathlib.Path("tests") / "lint_fixtures" / name).as_posix()


# Each staged violation is detected, attributed to the right rule and line.
expect("raw_clock",
       run("--allowlist", "none", fixture("raw_clock.cpp")),
       1, must_contain=["raw_clock.cpp:6: NV-RAW-CLOCK"])
expect("raw_random",
       run("--allowlist", "none", fixture("raw_random.cpp")),
       1, must_contain=["raw_random.cpp:6: NV-RAW-RANDOM"])
expect("implicit_memory_order",
       run("--allowlist", "none", fixture("implicit_memory_order.cpp")),
       1, must_contain=["implicit_memory_order.cpp:9: NV-MEMORY-ORDER",
                        "implicit_memory_order.cpp:10: NV-MEMORY-ORDER"])
expect("unguarded_mutex",
       run("--allowlist", "none", fixture("unguarded_mutex.h")),
       1, must_contain=["unguarded_mutex.h:17: NV-MUTEX-GUARD"])

# One fixture must not trip the other rules (one-violation-per-file contract).
expect("raw_clock is single-rule",
       run("--allowlist", "none", fixture("raw_clock.cpp")),
       1, must_not_contain=["NV-RAW-RANDOM", "NV-MEMORY-ORDER", "NV-MUTEX-GUARD"])

# The clean fixture yields nothing even with no allowlist.
expect("clean",
       run("--allowlist", "none", fixture("clean.cpp")),
       0, must_not_contain=["NV-"])

# NV-SYS-BATCH over the fixture mini-tree: the defaulted row and the missing
# row are both flagged; the explicit row is not.
sys_tree = (FIXTURE_DIR / "sys_tree").as_posix()
expect("sys_tree",
       run("--root", sys_tree, "--allowlist", "none"),
       1, must_contain=["NV-SYS-BATCH", "Sys::kBeta", "Sys::kGamma"],
       must_not_contain=["Sys::kAlpha"])

# Allowlisting by substring suppresses the finding (and only then).
allow = FIXTURE_DIR / "allow_raw_clock.tmp"
allow.write_text("NV-RAW-CLOCK tests/lint_fixtures/raw_clock.cpp "
                 "steady_clock::now\n")
try:
    expect("allowlisted raw_clock",
           run("--allowlist", str(allow), fixture("raw_clock.cpp")),
           0, must_not_contain=["NV-RAW-CLOCK"])
finally:
    allow.unlink()

# The real tree is clean under the checked-in allowlist.
expect("real tree", run(), 0)

if failures:
    print("\n\n".join(failures))
    print(f"run_lint_fixtures: {len(failures)} failure(s)")
    sys.exit(1)
print("run_lint_fixtures: all fixture checks passed")

// nvlint fixture: NV-MEMORY-ORDER violations — a defaulted-seq_cst load and
// an implicit ++ RMW on an atomic. Scanned only by the fixture runner.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> fixture_counter{0};

std::uint64_t implicit_memory_order_fixture() {
  ++fixture_counter;               // VIOLATION: implicit seq_cst RMW
  return fixture_counter.load();   // VIOLATION: load without memory_order
}

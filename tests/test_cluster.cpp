// Fleet-of-fleets: GossipBus delivery semantics, ShardRouter scoring,
// ClusterKeyspaceBudget splitting, FleetCluster wiring — and the acceptance
// scenario: a campaign on shard A tightens shard B via gossip BEFORE shard B
// has seen a single quarantine, deterministically under one ManualClock.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/budget.h"
#include "cluster/cluster.h"
#include "cluster/gossip.h"
#include "cluster/router.h"
#include "experiments/network_diversity.h"
#include "fleet_test_harness.h"

namespace nv::cluster {
namespace {

using fleet::CampaignAlert;
using fleet::ManualClock;
using fleet::harness::poison_job;
using fleet::harness::uid_spec;

using std::chrono::milliseconds;

CampaignAlert alert_with_id(std::uint64_t id) {
  CampaignAlert alert;
  alert.id = id;
  return alert;
}

// --- GossipBus ---------------------------------------------------------------

TEST(Gossip, SynchronousPublishSkipsOriginAndDeliversInAscendingOrder) {
  GossipBus bus;
  std::vector<std::pair<unsigned, unsigned>> seen;  // (subscriber, origin)
  for (unsigned i = 0; i < 3; ++i) {
    bus.subscribe([i, &seen](unsigned origin, const CampaignAlert&) {
      seen.emplace_back(i, origin);
    });
  }
  bus.publish(1, alert_with_id(7));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<unsigned, unsigned>{0, 1}));
  EXPECT_EQ(seen[1], (std::pair<unsigned, unsigned>{2, 1}));
  EXPECT_EQ(bus.published(), 1u);
  EXPECT_EQ(bus.delivered(), 2u);
  EXPECT_EQ(bus.pending(), 0u);
  EXPECT_EQ(bus.pump(), 0u);  // nothing queued at delay 0
}

TEST(Gossip, DelayedAlertsWaitForTheClockAndDeliverInPublishOrder) {
  ManualClock clock;
  GossipConfig config;
  config.propagation_delay = milliseconds(50);
  GossipBus bus(config, clock.fn());
  std::vector<std::uint64_t> order;
  bus.subscribe([&](unsigned, const CampaignAlert& alert) { order.push_back(alert.id); });
  bus.subscribe([&](unsigned, const CampaignAlert& alert) { order.push_back(alert.id); });

  bus.publish(0, alert_with_id(1));
  bus.publish(1, alert_with_id(2));
  EXPECT_EQ(bus.pending(), 2u);
  EXPECT_EQ(bus.pump(), 0u);  // not due yet
  EXPECT_TRUE(order.empty());

  clock.advance(milliseconds(50));
  // Each alert reaches ONE subscriber (the other is its origin): first alert
  // 1 to subscriber 1, then alert 2 to subscriber 0 — publish order.
  EXPECT_EQ(bus.pump(), 2u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(bus.pending(), 0u);
  EXPECT_EQ(bus.delivered(), 2u);
}

// --- ShardRouter -------------------------------------------------------------

TEST(ShardRouterTest, PrefersShallowQueuesAndFullKeyspaces) {
  ShardRouter router;
  std::vector<ShardHealth> shards(2);
  shards[0].queue_depth = 5;
  shards[1].queue_depth = 0;
  EXPECT_EQ(router.route(shards), 1u);

  // Equal load: the shard with more diversity left wins.
  shards[0].queue_depth = shards[1].queue_depth = 0;
  shards[0].keys_total = 16;
  shards[0].keys_remaining = 16;
  shards[1].keys_total = 16;
  shards[1].keys_remaining = 1;
  EXPECT_EQ(router.route(shards), 0u);
}

TEST(ShardRouterTest, SkipsNonAcceptingAndKeepsExhaustedAsLastResort) {
  ShardRouter router;
  std::vector<ShardHealth> shards(3);
  shards[0].accepting = false;
  shards[1].exhausted = true;
  EXPECT_EQ(router.route(shards), 2u);  // healthy shard beats exhausted

  shards[2].accepting = false;  // only the exhausted shard is left: still routable
  EXPECT_EQ(router.route(shards), 1u);

  shards[1].accepting = false;  // nobody left
  EXPECT_FALSE(router.route(shards).has_value());
  EXPECT_TRUE(router.ranked(shards).empty());
}

TEST(ShardRouterTest, ExactTiesRotateRoundRobin) {
  ShardRouter router;
  const std::vector<ShardHealth> shards(3);  // identical scores
  std::vector<unsigned> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(*router.route(shards));
  EXPECT_EQ(picks, (std::vector<unsigned>{0, 1, 2, 0, 1, 2}));
}

TEST(ShardRouterTest, RankedOrdersByScoreWithAscendingTieBreak) {
  ShardRouter router;
  std::vector<ShardHealth> shards(4);
  shards[0].queue_depth = 2;
  shards[1].queue_depth = 0;
  shards[2].queue_depth = 0;
  shards[3].accepting = false;
  EXPECT_EQ(router.ranked(shards), (std::vector<unsigned>{1, 2, 0}));
}

// --- ClusterKeyspaceBudget ---------------------------------------------------

TEST(Budget, SplitsEvenlyWithRemainderToLowIndexes) {
  const ClusterKeyspaceBudget budget(10, 3);
  EXPECT_EQ(budget.allocation(0), 4u);
  EXPECT_EQ(budget.allocation(1), 3u);
  EXPECT_EQ(budget.allocation(2), 3u);
  EXPECT_NE(budget.describe().find("10 keys over 3 shards"), std::string::npos);
}

TEST(Budget, UnlimitedAndInvalidConfigurations) {
  const ClusterKeyspaceBudget unlimited(0, 4);
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_EQ(unlimited.allocation(3), 0u);  // 0 = uncapped
  EXPECT_THROW((void)unlimited.allocation(4), std::out_of_range);
  EXPECT_THROW(ClusterKeyspaceBudget(0, 0), std::invalid_argument);
  // A budget smaller than the shard count starves some shard of its very
  // first key: rejected at construction, not discovered at runtime.
  EXPECT_THROW(ClusterKeyspaceBudget(2, 3), std::invalid_argument);
}

// --- FleetCluster ------------------------------------------------------------

ClusterConfig small_cluster(ManualClock& clock, unsigned shards = 2) {
  ClusterConfig config;
  config.shards = shards;
  config.shard.spec = uid_spec();
  config.shard.pool_size = 2;
  config.shard.queue_capacity = 8;
  config.shard.seed = 0xC1057E4;
  config.shard.work_stealing = false;
  config.shard.campaign.threshold = 3;
  config.shard.campaign.window = milliseconds(10'000);
  config.shard.campaign.rotate_fleet_on_alert = false;
  config.shard.adaptive.enabled = true;
  config.shard.adaptive.arm_rotation = false;
  config.shard.adaptive.tightened_rotation_interval = milliseconds(0);
  config.shard.adaptive.quiet_period = milliseconds(60'000);
  config.shard.clock = clock.fn();
  return config;
}

TEST(FleetClusterTest, ShardsGetDistinctDrawSpacesAndNetworkIdentities) {
  ManualClock clock;
  FleetCluster cluster(small_cluster(clock));
  ASSERT_EQ(cluster.shard_count(), 2u);
  // Disjoint seeds: the two shards' initial sessions differ, as do their
  // drawn network identities.
  EXPECT_NE(cluster.shard(0).live_fingerprints(), cluster.shard(1).live_fingerprints());
  EXPECT_NE(cluster.network_fingerprint(0), cluster.network_fingerprint(1));
  EXPECT_NE(cluster.network_fingerprint(0).find("port-hopping{mask=0x"), std::string::npos);

  const ClusterSnapshot snap = cluster.snapshot();
  EXPECT_EQ(snap.shards, 2u);
  EXPECT_EQ(snap.shards_accepting, 2u);
  EXPECT_EQ(snap.network_bits, 15.0);
  EXPECT_DOUBLE_EQ(snap.shard_spec_bits, 30.0);  // uid-xor
  EXPECT_DOUBLE_EQ(snap.cluster_bits, 2.0 * (30.0 + 15.0));
  EXPECT_NE(snap.describe().find("2 shards"), std::string::npos);
}

TEST(FleetClusterTest, NetworkRotationRedrawsTheShardIdentity) {
  ManualClock clock;
  FleetCluster cluster(small_cluster(clock));
  const std::string before = cluster.network_fingerprint(0);
  ASSERT_TRUE(cluster.rotate_shard_network(0));
  EXPECT_NE(cluster.network_fingerprint(0), before);
  EXPECT_EQ(cluster.snapshot().network_rotations, 1u);
  // The other shard's identity is untouched.
  EXPECT_EQ(cluster.network_fingerprint(1), cluster.snapshot().shard_views[1].network_fingerprint);
}

TEST(FleetClusterTest, StaticNetworkWhenNoNetworkVariations) {
  ManualClock clock;
  ClusterConfig config = small_cluster(clock);
  config.network_variations.clear();
  FleetCluster cluster(config);
  EXPECT_EQ(cluster.network_fingerprint(0), "static");
  EXPECT_FALSE(cluster.rotate_shard_network(0));
  EXPECT_EQ(cluster.snapshot().network_bits, 0.0);
}

TEST(FleetClusterTest, RoutedJobsRunAndCount) {
  ManualClock clock;
  FleetCluster cluster(small_cluster(clock));
  for (int i = 0; i < 4; ++i) {
    auto outcome = cluster.submit([](core::NVariantSystem&) {
      core::RunReport report;
      report.completed = true;
      return report;
    });
    EXPECT_TRUE(outcome.get().ok());
  }
  EXPECT_EQ(cluster.snapshot().jobs_routed, 4u);
  EXPECT_EQ(cluster.snapshot().jobs_unroutable, 0u);
}

TEST(FleetClusterTest, DrainedShardDegradesGracefully) {
  ManualClock clock;
  FleetCluster cluster(small_cluster(clock));
  const auto report = cluster.drain_shard(0, milliseconds(1000));
  EXPECT_TRUE(report.clean);

  // The router no longer places work on the drained shard.
  const auto before = cluster.shard(1).telemetry().snapshot().jobs_completed;
  for (int i = 0; i < 3; ++i) {
    auto outcome = cluster.try_submit([](core::NVariantSystem&) {
      core::RunReport report;
      report.completed = true;
      return report;
    });
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(outcome->get().ok());
  }
  EXPECT_EQ(cluster.shard(1).telemetry().snapshot().jobs_completed, before + 3);
  const ClusterSnapshot snap = cluster.snapshot();
  EXPECT_EQ(snap.shards_accepting, 1u);

  // Draining the last shard leaves nothing routable: submit() throws.
  (void)cluster.drain_shard(1, milliseconds(1000));
  EXPECT_THROW((void)cluster.submit([](core::NVariantSystem&) { return core::RunReport{}; }),
               std::runtime_error);
  EXPECT_GE(cluster.snapshot().jobs_unroutable, 1u);
}

TEST(FleetClusterTest, BudgetIsolatesANoisyShard) {
  // Global budget 6 over 2 shards = 3 keys each. Each shard's two initial
  // sessions cost 2, leaving ONE respawn draw per shard. A quarantine storm
  // on shard 0 exhausts only shard 0's slice; shard 1 keeps its remainder.
  ManualClock clock;
  ClusterConfig config = small_cluster(clock);
  config.global_key_budget = 6;
  FleetCluster cluster(config);

  EXPECT_EQ(cluster.snapshot().keys_total, 6u);
  EXPECT_EQ(cluster.snapshot().keys_remaining, 2u);

  // First poison: respawn burns shard 0's last key. Second: the respawn is
  // refused at the draw site (budget exhausted) and the lane dies.
  (void)cluster.submit_to(0, poison_job("budget storm")).get();
  (void)cluster.submit_to(0, poison_job("budget storm")).get();

  const ClusterSnapshot snap = cluster.snapshot();
  EXPECT_TRUE(snap.shard_views[0].exhausted);
  EXPECT_EQ(snap.shard_views[0].shard_keys_remaining, 0u);
  EXPECT_FALSE(snap.shard_views[1].exhausted);
  EXPECT_EQ(snap.shard_views[1].shard_keys_remaining, 1u);
  // And shard 1 still serves.
  EXPECT_TRUE(cluster.submit_to(1, [](core::NVariantSystem&) {
                       core::RunReport report;
                       report.completed = true;
                       return report;
                     })
                  .get()
                  .ok());
}

// --- The acceptance scenario -------------------------------------------------

TEST(FleetClusterTest, CampaignOnShardZeroTightensEveryShardBeforeTheyAreProbed) {
  // THE issue acceptance test, K = 3: the attacker runs its campaign against
  // shard 0 only. The moment shard 0's correlator raises the alert, gossip
  // must have tightened shards 1 and 2 — which have processed NOTHING — so
  // the attacker arrives at shard B facing a hair-trigger posture it never
  // probed into existence.
  ManualClock clock;
  FleetCluster cluster(small_cluster(clock, 3));
  const unsigned baseline_threshold = cluster.shard(1).campaign_policy().threshold;

  for (int i = 0; i < 3; ++i) {
    (void)cluster.submit_to(0, poison_job("coordinated probe burst")).get();
  }

  const ClusterSnapshot snap = cluster.snapshot();
  EXPECT_EQ(snap.shard_views[0].fleet.campaign_alerts, 1u);
  EXPECT_EQ(snap.gossip_published, 1u);
  EXPECT_EQ(snap.gossip_delivered, 2u);
  EXPECT_EQ(snap.remote_campaigns_applied, 2u);

  for (unsigned s = 1; s <= 2; ++s) {
    const auto view = snap.shard_views[s];
    EXPECT_EQ(view.fleet.sessions_quarantined, 0u) << "shard " << s << " was never probed";
    EXPECT_EQ(view.fleet.remote_campaigns, 1u) << "shard " << s;
    EXPECT_EQ(view.fleet.policy_tightened, 1u) << "shard " << s;
    ASSERT_NE(cluster.shard(s).adaptive(), nullptr);
    EXPECT_TRUE(cluster.shard(s).adaptive()->tightened()) << "shard " << s;
    EXPECT_LT(cluster.shard(s).campaign_policy().threshold, baseline_threshold)
        << "shard " << s;
  }
}

TEST(FleetClusterTest, GossipTighteningIsDeterministicAcrossRuns) {
  // Same seed, same scripted scenario => byte-identical shard identities and
  // identical tighten accounting, run after run (the TSan/CI replay
  // contract for everything the cluster layer adds).
  const auto run_once = [] {
    ManualClock clock;
    FleetCluster cluster(small_cluster(clock, 3));
    for (int i = 0; i < 3; ++i) {
      (void)cluster.submit_to(0, poison_job("coordinated probe burst")).get();
    }
    std::vector<std::string> identity;
    for (unsigned s = 0; s < 3; ++s) {
      identity.push_back(cluster.network_fingerprint(s));
      for (const auto& fp : cluster.shard(s).live_fingerprints()) identity.push_back(fp);
      identity.push_back(std::to_string(cluster.shard(s).campaign_policy().threshold));
      identity.push_back(std::to_string(
          cluster.shard(s).telemetry().snapshot().remote_campaigns));
    }
    return identity;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FleetClusterTest, DelayedGossipDeliversOnTheManualClockViaPump) {
  // With a propagation delay, the tighten lands only after the clock has
  // moved AND someone pumps — deterministically, in publish order.
  ManualClock clock;
  ClusterConfig config = small_cluster(clock);
  config.gossip.propagation_delay = milliseconds(50);
  FleetCluster cluster(config);

  for (int i = 0; i < 3; ++i) {
    (void)cluster.submit_to(0, poison_job("slow gossip burst")).get();
  }
  EXPECT_EQ(cluster.snapshot().gossip_pending, 1u);
  EXPECT_FALSE(cluster.shard(1).adaptive()->tightened());

  EXPECT_EQ(cluster.gossip().pump(), 0u);  // clock has not moved yet
  clock.advance(milliseconds(50));
  EXPECT_EQ(cluster.gossip().pump(), 1u);
  EXPECT_TRUE(cluster.shard(1).adaptive()->tightened());
  EXPECT_EQ(cluster.shard(1).telemetry().snapshot().sessions_quarantined, 0u);
}

// --- Experiment smoke --------------------------------------------------------

TEST(NetworkDiversityExperiment, SmallRunIsDeterministicAndInternallyConsistent) {
  experiments::ClusterExperimentConfig config;
  config.shards = 2;
  config.total_lanes = 4;
  config.ticks = 60;
  config.probes_per_tick = 2;
  config.timeline_stride = 10;
  config.seed = 0x5EED;

  const auto a = experiments::run_cluster_experiment(config);
  const auto b = experiments::run_cluster_experiment(config);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.silent_compromises, b.silent_compromises);
  EXPECT_EQ(a.compromised_lane_ticks, b.compromised_lane_ticks);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.endpoint_discoveries, b.endpoint_discoveries);
  EXPECT_DOUBLE_EQ(a.attacker_cost, b.attacker_cost);

  // Ledger arithmetic the schema checker also enforces.
  EXPECT_EQ(a.probes, a.payload_probes + a.endpoint_probes);
  EXPECT_EQ(a.endpoint_probes, a.endpoint_discoveries * a.endpoint_discovery_cost);
  EXPECT_GE(a.endpoint_discoveries, 2u);  // at least first contact per shard
  EXPECT_GT(a.silent_compromises, 0u);
  EXPECT_GT(a.quarantines, 0u);
  EXPECT_EQ(a.shards, 2u);
  EXPECT_EQ(a.lanes_per_shard, 2u);
  EXPECT_EQ(a.payload_keys, 16u);  // address-partitioning's real space
  EXPECT_EQ(a.endpoint_discovery_cost, 1ULL << 14);  // port-hopping: 2^(15-1)
}

TEST(NetworkDiversityExperiment, RejectsUnevenLaneSplits) {
  experiments::ClusterExperimentConfig config;
  config.shards = 3;
  config.total_lanes = 8;
  EXPECT_THROW((void)experiments::run_cluster_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace nv::cluster

// mini-httpd end to end: normal service, the Chen-style UID-corruption
// attack succeeding on the unprotected baseline, and the UID variation
// detecting it under the MVEE. Also reproduces the §4 error-log complication.
#include <gtest/gtest.h>

#include <thread>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "httpd/client.h"
#include "httpd/mini_httpd.h"
#include "test_helpers.h"

namespace nv {
namespace {

using core::NVariantSystem;
using httpd::HttpResponse;
using httpd::MiniHttpd;
using httpd::ServerConfig;

constexpr std::uint16_t kPort = 8080;

/// The non-control-data attack payload: a User-Agent that overflows the
/// 256-byte header buffer and overwrites the stored worker UID with zero
/// bytes (canonical root in variant 0's encoding).
std::map<std::string, std::string> attack_headers(std::size_t buffer_size) {
  std::string agent(buffer_size, 'A');
  agent += std::string(4, '\0');  // overwrite the adjacent uid_t with 0
  return {{"User-Agent", agent}};
}

ServerConfig test_config(guest::UidOpsMode mode, std::uint32_t max_requests) {
  ServerConfig config;
  config.listen_port = kPort;
  config.uid_ops_mode = mode;
  config.max_requests = max_requests;
  return config;
}

void wait_for_bind(vkernel::SocketHub& hub) {
  ASSERT_TRUE(testing::wait_for_bind(hub, kPort));
}

// --- single-process baseline (no redundancy, no monitor) -------------------

struct PlainServer {
  vfs::FileSystem fs;
  vkernel::SocketHub hub;
  vkernel::KernelContext ctx{fs, hub};
  MiniHttpd server;
  std::thread thread;
  guest::PlainRunResult result;

  explicit PlainServer(const ServerConfig& config) {
    httpd::install_default_site(fs, config);
    thread = std::thread([this] { result = guest::run_plain(ctx, server); });
    wait_for_bind(hub);
  }
  ~PlainServer() {
    hub.shutdown();
    if (thread.joinable()) thread.join();
  }
};

TEST(MiniHttpdPlain, ServesStaticPages) {
  PlainServer s(test_config(guest::UidOpsMode::kPlain, 3));
  EXPECT_EQ(httpd::http_get(s.hub, kPort, "/").status, 200);
  EXPECT_EQ(httpd::http_get(s.hub, kPort, "/page1.html").status, 200);
  EXPECT_EQ(httpd::http_get(s.hub, kPort, "/missing.html").status, 404);
}

TEST(MiniHttpdPlain, DropsPrivilegesForRequestHandling) {
  PlainServer s(test_config(guest::UidOpsMode::kPlain, 1));
  const HttpResponse who = httpd::http_get(s.hub, kPort, "/whoami");
  EXPECT_EQ(who.status, 200);
  EXPECT_EQ(who.body, "user\n");
}

TEST(MiniHttpdPlain, ServesProtectedResourceViaEscalation) {
  PlainServer s(test_config(guest::UidOpsMode::kPlain, 2));
  const HttpResponse secret = httpd::http_get(s.hub, kPort, "/secret/key.txt");
  EXPECT_EQ(secret.status, 200);
  EXPECT_EQ(secret.body, "TOP-SECRET-KEY\n");
  // After the protected request the server is back to the worker identity.
  EXPECT_EQ(httpd::http_get(s.hub, kPort, "/whoami").body, "user\n");
}

TEST(MiniHttpdPlain, UidCorruptionAttackSucceedsWithoutDefense) {
  PlainServer s(test_config(guest::UidOpsMode::kPlain, 3));
  // 1. Overflow the header buffer, overwriting the stored worker UID with 0.
  EXPECT_EQ(httpd::http_get(s.hub, kPort, "/", attack_headers(256)).status, 200);
  // 2. A protected request escalates, then "restores" the corrupted UID —
  //    which is now root. The server keeps running with full privileges.
  EXPECT_EQ(httpd::http_get(s.hub, kPort, "/secret/key.txt").status, 200);
  // 3. Proof of compromise: the worker now answers as root.
  EXPECT_EQ(httpd::http_get(s.hub, kPort, "/whoami").body, "root\n");
}

// --- 2-variant MVEE with the UID variation ---------------------------------

struct NvServer {
  std::unique_ptr<NVariantSystem> system;
  MiniHttpd server;

  explicit NvServer(const ServerConfig& config) {
    system = testing::build_system(std::chrono::milliseconds(1000), 2, {"uid-xor"});
    httpd::install_default_site(system->fs(), config);
    guest::launch_nvariant(*system, server);
    wait_for_bind(system->hub());
  }
  core::RunReport finish() { return system->stop(); }
};

TEST(MiniHttpdNVariant, ServesNormalTrafficWithoutAlarms) {
  NvServer s(test_config(guest::UidOpsMode::kSyscallChecked, 4));
  EXPECT_EQ(httpd::http_get(s.system->hub(), kPort, "/").status, 200);
  EXPECT_EQ(httpd::http_get(s.system->hub(), kPort, "/page2.html").status, 200);
  EXPECT_EQ(httpd::http_get(s.system->hub(), kPort, "/whoami").body, "user\n");
  EXPECT_EQ(httpd::http_get(s.system->hub(), kPort, "/secret/key.txt").body,
            "TOP-SECRET-KEY\n");
  const auto report = s.finish();
  EXPECT_FALSE(report.attack_detected);
  EXPECT_TRUE(report.completed);
}

TEST(MiniHttpdNVariant, UidCorruptionAttackIsDetectedAtUidValue) {
  NvServer s(test_config(guest::UidOpsMode::kSyscallChecked, 10));
  // The same two attack requests that compromised the plain server.
  (void)httpd::http_get(s.system->hub(), kPort, "/", attack_headers(256));
  (void)httpd::http_get(s.system->hub(), kPort, "/secret/key.txt");
  const auto report = s.finish();
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  // Immediate detection at the uid_value() exposure point (§3.5).
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kUidCheckFailed);
}

TEST(MiniHttpdNVariant, WithoutDetectionSyscallsAttackCaughtAtSeteuid) {
  NvServer s(test_config(guest::UidOpsMode::kPlain, 10));
  (void)httpd::http_get(s.system->hub(), kPort, "/", attack_headers(256));
  (void)httpd::http_get(s.system->hub(), kPort, "/secret/key.txt");
  const auto report = s.finish();
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  // Lower precision (§5): the alarm fires at the seteuid syscall boundary.
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

TEST(MiniHttpdNVariant, AttackNeverEscalatesTheWorker) {
  NvServer s(test_config(guest::UidOpsMode::kSyscallChecked, 10));
  (void)httpd::http_get(s.system->hub(), kPort, "/", attack_headers(256));
  const HttpResponse secret = httpd::http_get(s.system->hub(), kPort, "/secret/key.txt");
  // The system alarms during the protected request; the worker never reaches
  // a state where /whoami would say root.
  const HttpResponse who = httpd::http_get(s.system->hub(), kPort, "/whoami");
  EXPECT_NE(who.body, "root\n");
  (void)secret;
  const auto report = s.finish();
  EXPECT_TRUE(report.attack_detected);
}

TEST(MiniHttpdNVariant, LoggingUidsCausesBenignDivergence) {
  ServerConfig config = test_config(guest::UidOpsMode::kSyscallChecked, 4);
  config.log_uid_in_errors = true;  // the §4 complication, re-enabled
  NvServer s(config);
  // A 404 triggers an error-log line that embeds the per-variant euid.
  (void)httpd::http_get(s.system->hub(), kPort, "/missing.html");
  const auto report = s.finish();
  EXPECT_TRUE(report.attack_detected);  // false alarm, exactly as the paper found
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

TEST(MiniHttpdNVariant, UserSpaceReversedModeServesCorrectly) {
  NvServer s(test_config(guest::UidOpsMode::kUserSpaceReversed, 3));
  EXPECT_EQ(httpd::http_get(s.system->hub(), kPort, "/").status, 200);
  EXPECT_EQ(httpd::http_get(s.system->hub(), kPort, "/whoami").body, "user\n");
  EXPECT_EQ(httpd::http_get(s.system->hub(), kPort, "/secret/key.txt").status, 200);
  const auto report = s.finish();
  EXPECT_FALSE(report.attack_detected);
}

TEST(MiniHttpdNVariant, ErrorLogIsWrittenOnceNotTwice) {
  NvServer s(test_config(guest::UidOpsMode::kSyscallChecked, 2));
  (void)httpd::http_get(s.system->hub(), kPort, "/missing.html");
  (void)httpd::http_get(s.system->hub(), kPort, "/");
  const auto report = s.finish();
  EXPECT_FALSE(report.attack_detected);
  auto log = s.system->fs().read_file("/var/log/httpd-error.log", os::Credentials::root());
  ASSERT_TRUE(log.has_value());
  // One 404 -> exactly one log line (output performed once across variants).
  std::size_t lines = 0;
  for (char c : *log) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u);
}

}  // namespace
}  // namespace nv

// HTTP parsing/serialization and the httpd.conf format.
#include <gtest/gtest.h>

#include "httpd/config.h"
#include "httpd/http.h"

namespace nv::httpd {
namespace {

TEST(HttpRequestParse, WellFormedGet) {
  const auto request = parse_request(
      "GET /index.html HTTP/1.0\r\n"
      "Host: example.test\r\n"
      "User-Agent: WebBench/5.0\r\n"
      "\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/index.html");
  EXPECT_EQ(request->version, "HTTP/1.0");
  EXPECT_EQ(request->header("host"), "example.test");
  EXPECT_EQ(request->header("User-Agent"), "WebBench/5.0");  // case-insensitive
  EXPECT_EQ(request->header("absent"), "");
}

TEST(HttpRequestParse, MalformedInputsRejected) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("GARBAGE\r\n\r\n").has_value());
}

TEST(HttpRequestParse, HeadersStopAtBlankLine) {
  const auto request = parse_request(
      "GET / HTTP/1.0\r\n"
      "A: 1\r\n"
      "\r\n"
      "B: 2\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->header("a"), "1");
  EXPECT_EQ(request->header("b"), "");  // after the blank line: body, not header
}

TEST(HttpResponseFormat, StatusLineAndContentLength) {
  const std::string response = format_response(200, "hello", "text/plain");
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nhello"), std::string::npos);
  EXPECT_NE(format_response(404, "x").find("404 Not Found"), std::string::npos);
  EXPECT_NE(format_response(500, "x").find("500 Internal Server Error"), std::string::npos);
}

TEST(HttpRoundTrip, RequestThenResponse) {
  const std::string raw = format_request("GET", "/page", {{"User-Agent", "test"}});
  const auto parsed = parse_request(raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->path, "/page");
  EXPECT_EQ(parsed->header("user-agent"), "test");

  const auto response = parse_response(format_response(200, "body bytes"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "body bytes");
  EXPECT_EQ(response.headers.at("content-length"), "10");
}

TEST(HttpResponseParse, GarbageGivesStatusMinusOne) {
  EXPECT_EQ(parse_response("").status, -1);
  EXPECT_EQ(parse_response("not http").status, -1);
}

TEST(ServerConfigParse, AllDirectives) {
  const auto config = ServerConfig::parse(R"(
# comment
Listen 9999
User webuser
Group webgroup
DocumentRoot /srv/www
ErrorLog /var/log/err.log
Protected /admin
LogUidInErrors on
UidOpsMode userspace
MaxRequests 42
HeaderBufferSize 128
)");
  EXPECT_EQ(config.listen_port, 9999);
  EXPECT_EQ(config.user, "webuser");
  EXPECT_EQ(config.group, "webgroup");
  EXPECT_EQ(config.document_root, "/srv/www");
  EXPECT_EQ(config.error_log, "/var/log/err.log");
  EXPECT_EQ(config.protected_prefix, "/admin");
  EXPECT_TRUE(config.log_uid_in_errors);
  EXPECT_EQ(config.uid_ops_mode, guest::UidOpsMode::kUserSpaceReversed);
  EXPECT_EQ(config.max_requests, 42u);
  EXPECT_EQ(config.header_buffer_size, 128u);
}

TEST(ServerConfigParse, DefaultsWhenEmpty) {
  const auto config = ServerConfig::parse("");
  EXPECT_EQ(config.listen_port, 8080);
  EXPECT_EQ(config.user, "www");
  EXPECT_FALSE(config.log_uid_in_errors);
  EXPECT_EQ(config.uid_ops_mode, guest::UidOpsMode::kSyscallChecked);
}

TEST(ServerConfigParse, SerializeRoundTrips) {
  ServerConfig config;
  config.listen_port = 8123;
  config.user = "alice";
  config.log_uid_in_errors = true;
  config.uid_ops_mode = guest::UidOpsMode::kPlain;
  config.max_requests = 7;
  const auto round = ServerConfig::parse(config.serialize());
  EXPECT_EQ(round.listen_port, config.listen_port);
  EXPECT_EQ(round.user, config.user);
  EXPECT_EQ(round.log_uid_in_errors, config.log_uid_in_errors);
  EXPECT_EQ(round.uid_ops_mode, config.uid_ops_mode);
  EXPECT_EQ(round.max_requests, config.max_requests);
}

TEST(ServerConfigParse, UnknownDirectivesIgnored) {
  const auto config = ServerConfig::parse("Bogus directive\nListen 8081\n");
  EXPECT_EQ(config.listen_port, 8081);
}

}  // namespace
}  // namespace nv::httpd

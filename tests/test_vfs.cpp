#include <gtest/gtest.h>

#include "vfs/filesystem.h"
#include "vfs/passwd.h"
#include "vfs/path.h"

namespace nv::vfs {
namespace {

const os::Credentials kRoot = os::Credentials::root();
const os::Credentials kAlice = os::Credentials::user(1000, 1000);

TEST(Path, Normalization) {
  EXPECT_EQ(normalize_path("/etc//passwd/."), "/etc/passwd");
  EXPECT_EQ(normalize_path("/a/b/../c"), "/a/c");
  EXPECT_EQ(normalize_path("///"), "/");
  EXPECT_EQ(normalize_path("/../.."), "/");
}

TEST(Path, ParentAndBasename) {
  EXPECT_EQ(parent_path("/etc/passwd"), "/etc");
  EXPECT_EQ(parent_path("/etc"), "/");
  EXPECT_EQ(parent_path("/"), "/");
  EXPECT_EQ(basename("/etc/passwd"), "passwd");
  EXPECT_EQ(basename("/"), "");
}

TEST(Path, VariantPath) {
  EXPECT_EQ(variant_path("/etc/passwd", 0), "/etc/passwd-0");
  EXPECT_EQ(variant_path("/etc//passwd", 1), "/etc/passwd-1");
}

TEST(FileSystem, MkdirAndWriteRead) {
  FileSystem fs;
  ASSERT_TRUE(fs.mkdir_p("/a/b/c", kRoot));
  ASSERT_TRUE(fs.write_file("/a/b/c/f.txt", "data", kRoot));
  EXPECT_EQ(fs.read_file("/a/b/c/f.txt", kRoot).value(), "data");
  EXPECT_TRUE(fs.exists("/a/b"));
  EXPECT_FALSE(fs.exists("/a/z"));
}

TEST(FileSystem, OpenMissingFileFails) {
  FileSystem fs;
  auto r = fs.open("/nope", os::OpenFlags::kRead, kRoot);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), os::Errno::kENOENT);
}

TEST(FileSystem, CreateRequiresParentWriteAccess) {
  FileSystem fs;
  ASSERT_TRUE(fs.mkdir_p("/restricted", kRoot));
  ASSERT_TRUE(fs.chmod("/restricted", 0755, kRoot));
  auto r = fs.open("/restricted/x", os::OpenFlags::kWrite | os::OpenFlags::kCreate, kAlice);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), os::Errno::kEACCES);
}

TEST(FileSystem, PermissionBitsEnforced) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/rootonly", "secret", kRoot, 0600));
  auto denied = fs.read_file("/rootonly", kAlice);
  ASSERT_FALSE(denied.has_value());
  EXPECT_EQ(denied.error(), os::Errno::kEACCES);
  EXPECT_TRUE(fs.read_file("/rootonly", kRoot).has_value());
}

TEST(FileSystem, GroupPermissionsApply) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/shared", "g", kRoot, 0640));
  ASSERT_TRUE(fs.chown("/shared", 0, 1000, kRoot));
  EXPECT_TRUE(fs.read_file("/shared", kAlice).has_value());  // alice's gid 1000
  const os::Credentials bob = os::Credentials::user(1001, 50);
  EXPECT_FALSE(fs.read_file("/shared", bob).has_value());
}

TEST(FileSystem, SupplementaryGroupsChecked) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/grp", "x", kRoot, 0040));
  os::Credentials carol = os::Credentials::user(1002, 77);
  carol.groups = {200, 300};
  ASSERT_TRUE(fs.chown("/grp", 0, 300, kRoot));
  EXPECT_TRUE(fs.read_file("/grp", carol).has_value());
}

TEST(FileSystem, TruncateAndAppend) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/f", "0123456789", kRoot));
  auto f = fs.open("/f", os::OpenFlags::kWrite | os::OpenFlags::kTruncate, kRoot);
  ASSERT_TRUE(f.has_value());
  ASSERT_TRUE((*f)->write("ab").has_value());
  EXPECT_EQ(fs.read_file("/f", kRoot).value(), "ab");

  auto a = fs.open("/f", os::OpenFlags::kWrite | os::OpenFlags::kAppend, kRoot);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE((*a)->write("cd").has_value());
  EXPECT_EQ(fs.read_file("/f", kRoot).value(), "abcd");
}

TEST(FileSystem, ReadAdvancesCursor) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/f", "hello", kRoot));
  auto f = fs.open("/f", os::OpenFlags::kRead, kRoot);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ((*f)->read(2).value(), "he");
  EXPECT_EQ((*f)->read(10).value(), "llo");
  EXPECT_EQ((*f)->read(10).value(), "");  // EOF
  ASSERT_TRUE((*f)->seek(1).has_value());
  EXPECT_EQ((*f)->read(2).value(), "el");
}

TEST(FileSystem, WriteOnReadOnlyFdFails) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/f", "x", kRoot));
  auto f = fs.open("/f", os::OpenFlags::kRead, kRoot);
  ASSERT_TRUE(f.has_value());
  auto w = (*f)->write("y");
  ASSERT_FALSE(w.has_value());
  EXPECT_EQ(w.error(), os::Errno::kEBADF);
}

TEST(FileSystem, UnlinkAndRename) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/f", "x", kRoot));
  ASSERT_TRUE(fs.rename("/f", "/g", kRoot));
  EXPECT_FALSE(fs.exists("/f"));
  EXPECT_TRUE(fs.exists("/g"));
  ASSERT_TRUE(fs.unlink("/g", kRoot));
  EXPECT_FALSE(fs.exists("/g"));
  auto u = fs.unlink("/g", kRoot);
  ASSERT_FALSE(u.has_value());
  EXPECT_EQ(u.error(), os::Errno::kENOENT);
}

TEST(FileSystem, StatReportsMetadata) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/f", "12345", kRoot, 0640));
  const auto st = fs.stat("/f");
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->is_dir);
  EXPECT_EQ(st->size, 5u);
  EXPECT_EQ(st->mode, 0640);
  EXPECT_EQ(st->uid, 0u);
}

TEST(FileSystem, ListDirSorted) {
  FileSystem fs;
  ASSERT_TRUE(fs.mkdir_p("/d", kRoot));
  ASSERT_TRUE(fs.write_file("/d/b", "", kRoot));
  ASSERT_TRUE(fs.write_file("/d/a", "", kRoot));
  const auto names = fs.list_dir("/d");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
}

TEST(FileSystem, ChmodRequiresOwnershipOrRoot) {
  FileSystem fs;
  ASSERT_TRUE(fs.write_file("/f", "", kRoot, 0644));
  auto denied = fs.chmod("/f", 0600, kAlice);
  ASSERT_FALSE(denied.has_value());
  EXPECT_EQ(denied.error(), os::Errno::kEPERM);
  ASSERT_TRUE(fs.chown("/f", 1000, 1000, kRoot));
  EXPECT_TRUE(fs.chmod("/f", 0600, kAlice));
}

TEST(Passwd, ParseAndFormatRoundTrip) {
  const std::string content =
      "root:x:0:0:root:/root:/bin/sh\n"
      "# comment line\n"
      "www:x:33:33:www data:/var/www:/usr/sbin/nologin\n"
      "broken-line-without-fields\n";
  const auto entries = parse_passwd(content);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "root");
  EXPECT_EQ(entries[1].uid, 33u);
  EXPECT_EQ(entries[1].gecos, "www data");
  const auto round = parse_passwd(format_passwd(entries));
  EXPECT_EQ(round, entries);
}

TEST(Passwd, FindHelpers) {
  const auto entries = parse_passwd("a:x:1:1:::\nb:x:2:2:::\n");
  EXPECT_EQ(find_user(entries, "b")->uid, 2u);
  EXPECT_FALSE(find_user(entries, "c").has_value());
  EXPECT_EQ(find_uid(entries, 1)->name, "a");
}

TEST(Passwd, GroupParseAndMembers) {
  const auto groups = parse_group("wheel:x:10:alice,bob\nempty:x:11:\n");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, (std::vector<std::string>{"alice", "bob"}));
  EXPECT_TRUE(groups[1].members.empty());
}

TEST(Passwd, DiversifyRewritesOnlyIds) {
  const std::string content = "root:x:0:0:root:/root:/bin/sh\nwww:x:33:33:w:/var/www:/bin/f\n";
  const auto mask = [](os::uid_t u) { return u ^ 0x7FFFFFFFu; };
  const std::string diversified = diversify_passwd(content, mask, mask);
  const auto entries = parse_passwd(diversified);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].uid, 0x7FFFFFFFu);
  EXPECT_EQ(entries[1].uid, 33u ^ 0x7FFFFFFFu);
  EXPECT_EQ(entries[0].name, "root");
  EXPECT_EQ(entries[0].shell, "/bin/sh");
}

TEST(Passwd, DiversifyGroupRewritesGid) {
  const auto mask = [](os::gid_t g) { return g ^ 0x3FFFFFFFu; };
  const auto groups = parse_group(diversify_group("www:x:33:alice\n", mask));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].gid, 33u ^ 0x3FFFFFFFu);
  EXPECT_EQ(groups[0].members, (std::vector<std::string>{"alice"}));
}

}  // namespace
}  // namespace nv::vfs

// The Table 3 performance reproduction: absolute calibration on config 1 and
// shape (relative overheads) everywhere else.
#include <gtest/gtest.h>

#include "perf/webbench.h"

namespace nv::perf {
namespace {

constexpr ServerSetup kSetups[] = {
    ServerSetup::kUnmodified,
    ServerSetup::kTransformed,
    ServerSetup::kTwoVariantAddress,
    ServerSetup::kTwoVariantUid,
};

PerfResult run_cell(ServerSetup setup, bool saturated) {
  WorkloadConfig workload;
  workload.clients = saturated ? 15 : 1;
  workload.duration = 20 * sim::kSecond;
  return run_webbench(setup, CostModel{}, workload);
}

TEST(CostModel, DemandOrdering) {
  const CostModel model;
  const double d1 = model.demand_ms(ServerSetup::kUnmodified);
  const double d2 = model.demand_ms(ServerSetup::kTransformed);
  const double d3 = model.demand_ms(ServerSetup::kTwoVariantAddress);
  const double d4 = model.demand_ms(ServerSetup::kTwoVariantUid);
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
  EXPECT_LT(d3, d4);
  // 2-variant demand is a bit over 2x the single-variant demand.
  EXPECT_GT(d3, 2.0 * d1);
  EXPECT_LT(d3, 2.6 * d1);
}

TEST(CostModel, VisibleDemandBelowTotalForTwoVariants) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(model.visible_demand_ms(ServerSetup::kUnmodified),
                   model.demand_ms(ServerSetup::kUnmodified));
  EXPECT_LT(model.visible_demand_ms(ServerSetup::kTwoVariantUid),
            model.demand_ms(ServerSetup::kTwoVariantUid));
}

TEST(Table3, UnsaturatedBaselineMatchesPaperClosely) {
  const auto result = run_cell(ServerSetup::kUnmodified, false);
  const auto paper = paper_table3(ServerSetup::kUnmodified, false);
  EXPECT_NEAR(result.latency_ms, paper.latency_ms, paper.latency_ms * 0.03);
  EXPECT_NEAR(result.throughput_kbps, paper.throughput_kbps, paper.throughput_kbps * 0.03);
}

TEST(Table3, SaturatedBaselineMatchesPaperClosely) {
  const auto result = run_cell(ServerSetup::kUnmodified, true);
  const auto paper = paper_table3(ServerSetup::kUnmodified, true);
  EXPECT_NEAR(result.latency_ms, paper.latency_ms, paper.latency_ms * 0.03);
  EXPECT_NEAR(result.throughput_kbps, paper.throughput_kbps, paper.throughput_kbps * 0.03);
}

TEST(Table3, EveryCellWithinTenPercentOfPaper) {
  for (bool saturated : {false, true}) {
    for (ServerSetup setup : kSetups) {
      const auto result = run_cell(setup, saturated);
      const auto paper = paper_table3(setup, saturated);
      EXPECT_NEAR(result.throughput_kbps, paper.throughput_kbps,
                  paper.throughput_kbps * 0.10)
          << to_string(setup) << (saturated ? " saturated" : " unsaturated");
      EXPECT_NEAR(result.latency_ms, paper.latency_ms, paper.latency_ms * 0.10)
          << to_string(setup) << (saturated ? " saturated" : " unsaturated");
    }
  }
}

TEST(Table3Shape, TransformationOverheadIsNegligible) {
  // §4: "the overhead of the UID code transformations ... was negligible".
  const auto base = run_cell(ServerSetup::kUnmodified, true);
  const auto transformed = run_cell(ServerSetup::kTransformed, true);
  EXPECT_GT(transformed.throughput_kbps, base.throughput_kbps * 0.97);
}

TEST(Table3Shape, SaturatedThroughputRoughlyHalvesWithTwoVariants) {
  // "the approximate halving of throughput reflects the redundant
  // computation required from running 2 variants."
  const auto base = run_cell(ServerSetup::kUnmodified, true);
  const auto dual = run_cell(ServerSetup::kTwoVariantAddress, true);
  const double ratio = base.throughput_kbps / dual.throughput_kbps;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 2.6);
  // Paper's ratio: 5420/2369 = 2.29.
  EXPECT_NEAR(ratio, 5420.0 / 2369.0, 0.15);
}

TEST(Table3Shape, UidVariationAddsSmallOverheadOnTopOfMvee) {
  // §4: config 4 vs config 3 — ~4.5% saturated throughput, ~3% latency.
  const auto addr = run_cell(ServerSetup::kTwoVariantAddress, true);
  const auto uid = run_cell(ServerSetup::kTwoVariantUid, true);
  const double drop = 1.0 - uid.throughput_kbps / addr.throughput_kbps;
  EXPECT_GT(drop, 0.01);
  EXPECT_LT(drop, 0.09);
}

TEST(Table3Shape, UnsaturatedOverheadIsMuchSmallerThanSaturated) {
  // "the overhead measured for the unloaded server is fairly low, since the
  // process is primarily I/O bound."
  const auto base_unsat = run_cell(ServerSetup::kUnmodified, false);
  const auto dual_unsat = run_cell(ServerSetup::kTwoVariantAddress, false);
  const double unsat_drop = 1.0 - dual_unsat.throughput_kbps / base_unsat.throughput_kbps;
  const auto base_sat = run_cell(ServerSetup::kUnmodified, true);
  const auto dual_sat = run_cell(ServerSetup::kTwoVariantAddress, true);
  const double sat_drop = 1.0 - dual_sat.throughput_kbps / base_sat.throughput_kbps;
  EXPECT_LT(unsat_drop, 0.20);  // paper: 12.2%
  EXPECT_GT(sat_drop, 0.45);    // paper: 56%
  EXPECT_LT(unsat_drop, sat_drop);
}

TEST(Table3Shape, SaturatedCpuIsTheBottleneck) {
  const auto result = run_cell(ServerSetup::kTwoVariantUid, true);
  EXPECT_GT(result.cpu_utilization, 0.95);
  const auto unsat = run_cell(ServerSetup::kUnmodified, false);
  EXPECT_LT(unsat.cpu_utilization, 0.4);
}

TEST(Webbench, DeterministicForFixedSeed) {
  WorkloadConfig workload;
  workload.clients = 4;
  workload.duration = 5 * sim::kSecond;
  const auto a = run_webbench(ServerSetup::kTwoVariantUid, CostModel{}, workload);
  const auto b = run_webbench(ServerSetup::kTwoVariantUid, CostModel{}, workload);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
}

TEST(Webbench, MoreClientsMoreThroughputUntilSaturation) {
  WorkloadConfig workload;
  workload.duration = 10 * sim::kSecond;
  double last = 0;
  for (unsigned clients : {1u, 2u, 4u, 8u}) {
    workload.clients = clients;
    const auto result = run_webbench(ServerSetup::kUnmodified, CostModel{}, workload);
    EXPECT_GT(result.throughput_kbps, last);
    last = result.throughput_kbps;
  }
}

}  // namespace
}  // namespace nv::perf

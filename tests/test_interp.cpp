// Mini-C interpreter semantics on the plain kernel.
#include <gtest/gtest.h>

#include "guest/runners.h"
#include "test_helpers.h"
#include "transform/analysis.h"
#include "transform/interp.h"
#include "transform/parser.h"

namespace nv::transform {
namespace {

struct InterpFixture : ::testing::Test {
  vfs::FileSystem fs;
  vkernel::SocketHub hub;
  vkernel::KernelContext ctx{fs, hub};

  void SetUp() override {
    const auto root = os::Credentials::root();
    ASSERT_TRUE(fs.mkdir_p("/etc", root));
    ASSERT_TRUE(fs.write_file("/etc/passwd",
                              "root:x:0:0:r:/:/bin/sh\nwww:x:33:33:w:/w:/bin/f\n", root));
    ASSERT_TRUE(fs.write_file("/etc/group", "root:x:0:\nwww:x:33:\n", root));
  }

  /// Run `source` to completion; returns the interpreter result.
  InterpResult run(std::string_view source, InterpOptions options = {}) {
    Program program = parse(source);
    const auto analysis = analyze(program);
    EXPECT_TRUE(analysis.ok()) << (analysis.errors.empty() ? "" : analysis.errors.front());
    InterpResult result;
    nv::testing::LambdaGuest guest([&](guest::GuestContext& g) {
      result = interpret(program, g, options);
      g.exit(0);
    });
    const auto report = guest::run_plain(ctx, guest);
    EXPECT_TRUE(report.completed);
    return result;
  }

  long long ret_int(std::string_view source) {
    const auto result = run(source);
    return std::get<long long>(result.ret);
  }
};

TEST_F(InterpFixture, ArithmeticAndPrecedence) {
  EXPECT_EQ(ret_int("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(ret_int("int main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(ret_int("int main() { return 10 / 3; }"), 3);
  EXPECT_EQ(ret_int("int main() { return -5 + 2; }"), -3);
}

TEST_F(InterpFixture, ComparisonAndLogic) {
  EXPECT_EQ(ret_int("int main() { return 1 < 2 && 3 >= 3; }"), 1);
  EXPECT_EQ(ret_int("int main() { return 1 > 2 || 5 != 5; }"), 0);
  EXPECT_EQ(ret_int("int main() { return !0; }"), 1);
}

TEST_F(InterpFixture, ShortCircuitEvaluation) {
  // The right side would exit(9); && must not evaluate it.
  const auto result = run(R"(
    int main() {
      if (false && exit_now()) { return 1; }
      return 7;
    }
    bool exit_now() {
      exit(9);
      return true;
    }
  )");
  EXPECT_EQ(std::get<long long>(result.ret), 7);
}

TEST_F(InterpFixture, WhileLoopAndAssignment) {
  EXPECT_EQ(ret_int(R"(
    int main() {
      int total = 0;
      int i = 1;
      while (i <= 10) {
        total = total + i;
        i = i + 1;
      }
      return total;
    }
  )"),
            55);
}

TEST_F(InterpFixture, FunctionCallsAndRecursion) {
  EXPECT_EQ(ret_int(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(10); }
  )"),
            55);
}

TEST_F(InterpFixture, StringsAndLogging) {
  const auto result = run(R"(
    int main() {
      log_msg("hello" + " " + "world");
      respond(200);
      respond(404);
      return 0;
    }
  )");
  ASSERT_EQ(result.log.size(), 1u);
  EXPECT_EQ(result.log[0], "hello world");
  EXPECT_EQ(result.responses, (std::vector<long long>{200, 404}));
}

TEST_F(InterpFixture, SyscallBuiltinsHitTheKernel) {
  const auto result = run(R"(
    int main() {
      uid_t www = getpwnam_uid("www");
      if (seteuid(www) != 0) { return 1; }
      if (geteuid() != www) { return 2; }
      return 0;
    }
  )");
  EXPECT_EQ(std::get<long long>(result.ret), 0);
}

TEST_F(InterpFixture, GetpwuidOkProbesPasswd) {
  EXPECT_EQ(ret_int("int main() { if (getpwuid_ok(33)) { return 1; } return 0; }"), 1);
  EXPECT_EQ(ret_int("int main() { if (getpwuid_ok(999)) { return 1; } return 0; }"), 0);
}

TEST_F(InterpFixture, UidComparisonsAreUnsigned) {
  // (uid_t)-1 must compare greater than 0, not less (unsigned semantics).
  EXPECT_EQ(ret_int(R"(
    int main() {
      uid_t sentinel = 0xFFFFFFFF;
      uid_t root = 0;
      if (sentinel > root) { return 1; }
      return 0;
    }
  )"),
            1);
}

TEST_F(InterpFixture, DivisionByZeroThrows) {
  Program program = parse("int main() { return 1 / 0; }");
  ASSERT_TRUE(analyze(program).ok());
  nv::testing::LambdaGuest guest([&](guest::GuestContext& g) {
    EXPECT_THROW((void)interpret(program, g), std::runtime_error);
    g.exit(0);
  });
  EXPECT_TRUE(guest::run_plain(ctx, guest).completed);
}

TEST_F(InterpFixture, StepBudgetStopsInfiniteLoops) {
  Program program = parse("int main() { while (true) { } return 0; }");
  ASSERT_TRUE(analyze(program).ok());
  nv::testing::LambdaGuest guest([&](guest::GuestContext& g) {
    InterpOptions options;
    options.max_steps = 1000;
    EXPECT_THROW((void)interpret(program, g, options), std::runtime_error);
    g.exit(0);
  });
  EXPECT_TRUE(guest::run_plain(ctx, guest).completed);
}

TEST_F(InterpFixture, MissingEntryFunctionThrows) {
  Program program = parse("int helper() { return 1; }");
  ASSERT_TRUE(analyze(program).ok());
  nv::testing::LambdaGuest guest([&](guest::GuestContext& g) {
    EXPECT_THROW((void)interpret(program, g), std::runtime_error);
    g.exit(0);
  });
  EXPECT_TRUE(guest::run_plain(ctx, guest).completed);
}

TEST_F(InterpFixture, LogFdWritesToFile) {
  Program program = parse(R"(int main() { log_msg("to-file"); return 0; })");
  ASSERT_TRUE(analyze(program).ok());
  nv::testing::LambdaGuest guest([&](guest::GuestContext& g) {
    auto fd = g.open("/log.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
    ASSERT_TRUE(fd.has_value());
    InterpOptions options;
    options.log_fd = *fd;
    (void)interpret(program, g, options);
    (void)g.close(*fd);
    g.exit(0);
  });
  ASSERT_TRUE(guest::run_plain(ctx, guest).completed);
  EXPECT_EQ(fs.read_file("/log.txt", os::Credentials::root()).value(), "to-file\n");
}

TEST_F(InterpFixture, ExitBuiltinUnwindsGuest) {
  Program program = parse("int main() { exit(5); return 0; }");
  ASSERT_TRUE(analyze(program).ok());
  nv::testing::LambdaGuest guest([&](guest::GuestContext& g) {
    (void)interpret(program, g);  // exit() throws GuestExit through here
    FAIL() << "interpret should not return";
  });
  const auto result = guest::run_plain(ctx, guest);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.exit_code, 5);
}

}  // namespace
}  // namespace nv::transform

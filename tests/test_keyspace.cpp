// Entropy-aware keyspace accounting, end to end: per-variation
// keyspace_bits() estimates, their additive composition through
// DiversitySuite / NVariantSystem, the SessionFactory's keys-total /
// keys-remaining ledger (including the 16-stride address-partitioning space
// whose exhaustion the factory's observed draw count must match exactly),
// and the fleet's exhaustion posture: low-keyspace rotation backoff and the
// rotation deadline's quarantine-style swap under a too-slow job — all on
// ManualClock time, no sleeps.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/diversity_suite.h"
#include "core/nvariant_system.h"
#include "core/variation_registry.h"
#include "fleet/fleet.h"
#include "fleet/jobs.h"
#include "fleet/ops.h"
#include "fleet/session_factory.h"
#include "fleet_test_harness.h"
#include "variants/address_partitioning.h"
#include "variants/registry.h"

namespace nv::fleet {
namespace {

using harness::uid_spec;
using harness::wait_until;

using std::chrono::milliseconds;

core::VariationPtr make(std::string_view name, const core::VariationParams& params = {}) {
  return variants::make_builtin(name, params);
}

// --- Per-variation estimates -------------------------------------------------

TEST(KeyspaceBits, BuiltinVariationsReportTheirDrawSpaces) {
  // uid-xor: bit 30 pinned, 30 random bits.
  EXPECT_DOUBLE_EQ(make("uid-xor")->keyspace_bits(2), 30.0);
  // address-partitioning: 16 stride multiples of 256 MiB.
  EXPECT_DOUBLE_EQ(make("address-partitioning")->keyspace_bits(2), 4.0);
  // instruction-tagging: base tag in [1, 0xFF-(N-1)].
  EXPECT_NEAR(make("instruction-tagging")->keyspace_bits(2), std::log2(254.0), 1e-12);
  EXPECT_NEAR(make("instruction-tagging")->keyspace_bits(4), std::log2(252.0), 1e-12);
  // stack-reversal draws nothing: a zero-entropy (single-key) variation.
  EXPECT_DOUBLE_EQ(make("stack-reversal")->keyspace_bits(2), 0.0);
}

TEST(KeyspaceBits, ExtendedPartitioningCountsObservableLayoutsNotSeeds) {
  // The factory draws a 64-bit seed, but an attacker observes only the
  // DERIVED per-variant page offsets — (max_offset/4096 - 1) choices per
  // offset-carrying variant (variant 0 stays at the partition base). The
  // ledger counts that observable space, so keys_remaining is honest.
  const auto ext = make("extended-address-partitioning");
  EXPECT_NEAR(ext->keyspace_bits(2), std::log2(255.0), 1e-12);
  EXPECT_NEAR(ext->keyspace_bits(3), 2.0 * std::log2(255.0), 1e-12);

  SessionSpec spec;
  spec.n_variants = 2;
  spec.variations = {"extended-address-partitioning"};
  SessionFactory factory(spec, 3, variants::builtin_registry());
  EXPECT_EQ(factory.keyspace().keys_total, 255u);
  auto session = factory.make_session();
  ASSERT_TRUE(session.has_value());
  // The diversity key is the derived layout, not the seed.
  EXPECT_NE(session->diversity_key.find("offsets=0x"), std::string::npos);
  EXPECT_FALSE(factory.keyspace().exhausted());
}

TEST(KeyspaceAccounting, ExtendedPartitioningLedgerCollapsesSeedCollisions) {
  // Two seeds that derive the SAME layout are the same key. Shadow the
  // builtin with a two-layout jitter space (max_offset = 3 pages): fresh
  // 64-bit seeds keep arriving, but after both layouts are issued the third
  // session must be refused — distinct fingerprints, duplicate observables.
  core::VariationRegistry registry;
  registry.add(
      "extended-address-partitioning", "two-layout jitter for the ledger test",
      [](const core::VariationParams& params)
          -> util::Expected<core::VariationPtr, std::string> {
        const auto seed = params.get_u64("seed", 1234);
        if (!seed) return util::Unexpected{seed.error()};
        return core::VariationPtr{std::make_shared<variants::ExtendedAddressPartitioning>(
            0x80000000ULL, 3ULL * 4096, *seed)};
      });

  SessionSpec spec;
  spec.n_variants = 2;
  spec.variations = {"extended-address-partitioning"};
  SessionFactory factory(spec, 0xF00D, registry);
  ASSERT_EQ(factory.keyspace().keys_total, 2u);

  ASSERT_TRUE(factory.make_session().has_value());
  ASSERT_TRUE(factory.make_session().has_value());
  EXPECT_TRUE(factory.keyspace().exhausted());
  auto third = factory.make_session();
  ASSERT_FALSE(third.has_value());
  EXPECT_NE(third.error().find("duplicate diversity draw"), std::string::npos);
  EXPECT_EQ(factory.unique_keys_issued(), 2u);
}

TEST(KeyspaceAccounting, BudgetCapRefusesDrawsAtTheAllocationBoundary) {
  // Cluster budgeting: max_unique_keys caps a 16-key natural space at 3.
  // The gauge reports the allocation, exhaustion fires at its boundary, and
  // the refusal is systematic (no redraw can help).
  SessionSpec spec;
  spec.n_variants = 2;
  spec.variations = {"address-partitioning"};
  spec.max_unique_keys = 3;
  SessionFactory factory(spec, 0xBEEF, variants::builtin_registry());
  EXPECT_EQ(factory.keyspace().keys_total, 3u);

  for (unsigned draw = 1; draw <= 3; ++draw) {
    ASSERT_TRUE(factory.make_session().has_value()) << "draw " << draw;
  }
  EXPECT_TRUE(factory.keyspace().exhausted());
  auto fourth = factory.make_session();
  ASSERT_FALSE(fourth.has_value());
  EXPECT_NE(fourth.error().find("keyspace budget exhausted"), std::string::npos);
  EXPECT_EQ(factory.unique_keys_issued(), 3u);
}

// --- Composition -------------------------------------------------------------

TEST(KeyspaceBits, SuiteCompositionAddsBitsAndZeroEntropyMembersAddNothing) {
  auto suite =
      core::DiversitySuite::compose(2, {make("address-partitioning"), make("uid-xor")});
  ASSERT_TRUE(suite.has_value());
  EXPECT_DOUBLE_EQ(suite->keyspace_bits(), 34.0);  // 4 + 30

  // A zero-entropy variation composes as a multiplicative identity.
  auto with_zero = core::DiversitySuite::compose(
      2, {make("address-partitioning"), make("stack-reversal")});
  ASSERT_TRUE(with_zero.has_value());
  EXPECT_DOUBLE_EQ(with_zero->keyspace_bits(), 4.0);

  // Redundancy alone (the paper's configuration 2) is a single-key space.
  EXPECT_DOUBLE_EQ(core::DiversitySuite::identical(3).keyspace_bits(), 0.0);
}

TEST(KeyspaceBits, SealedSystemExposesTheComposedEntropy) {
  auto suite =
      core::DiversitySuite::compose(2, {make("uid-xor"), make("instruction-tagging")});
  ASSERT_TRUE(suite.has_value());
  auto system = core::NVariantSystem::Builder().suite(*std::move(suite)).build();
  EXPECT_NEAR(system->keyspace_bits(), 30.0 + std::log2(254.0), 1e-9);
}

// --- SessionFactory accounting ----------------------------------------------

TEST(KeyspaceAccounting, RegistryDefaultSpecsAreUntracked) {
  SessionSpec spec = uid_spec();
  spec.randomize = false;
  SessionFactory factory(spec, 7, variants::builtin_registry());
  const KeyspaceAccount account = factory.keyspace();
  EXPECT_FALSE(account.tracked);
  EXPECT_EQ(account.keys_total, 0u);
  EXPECT_FALSE(account.exhausted());
  EXPECT_NE(account.describe().find("untracked"), std::string::npos);
}

TEST(KeyspaceAccounting, ZeroEntropySpecIsASingleKeySpace) {
  // stack-reversal under randomize: the factory draws nothing, so exactly ONE
  // unique diversity key exists — the second session would repeat the
  // reexpression the first already exposed.
  SessionSpec spec;
  spec.n_variants = 2;
  spec.variations = {"stack-reversal"};
  SessionFactory factory(spec, 7, variants::builtin_registry());
  EXPECT_EQ(factory.keyspace().keys_total, 1u);
  EXPECT_EQ(factory.keyspace().keys_remaining, 1u);

  ASSERT_TRUE(factory.make_session().has_value());
  EXPECT_TRUE(factory.keyspace().exhausted());
  auto second = factory.make_session();
  ASSERT_FALSE(second.has_value());
  EXPECT_NE(second.error().find("duplicate diversity draw"), std::string::npos);
}

TEST(KeyspaceAccounting, SixteenStrideExhaustionMatchesObservedDraws) {
  // The acceptance anchor: address-partitioning's reported 4-bit space must
  // equal the number of unique draws the factory actually delivers — 16
  // sessions, with keys_remaining counting down in lockstep, then an
  // explicit exhaustion error.
  SessionSpec spec;
  spec.n_variants = 2;
  spec.variations = {"address-partitioning"};
  SessionFactory factory(spec, 0xBEEF, variants::builtin_registry());
  ASSERT_EQ(factory.keyspace().keys_total, 16u);

  for (unsigned draw = 1; draw <= 16; ++draw) {
    ASSERT_TRUE(factory.make_session().has_value()) << "draw " << draw;
    EXPECT_EQ(factory.keyspace().keys_issued, draw);
    EXPECT_EQ(factory.keyspace().keys_remaining, 16u - draw);
  }
  EXPECT_TRUE(factory.keyspace().exhausted());
  EXPECT_FALSE(factory.make_session().has_value());
  EXPECT_EQ(factory.unique_keys_issued(), 16u);  // the 17th burned no key
}

// --- Fleet posture -----------------------------------------------------------

TEST(FleetKeyspace, GaugesMirrorTheFactoryAccount) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 8;
  config.seed = 0x6A6E;
  VariantFleet fleet(config);

  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.keys_total, 1ULL << 30);
  EXPECT_EQ(snap.keys_remaining, (1ULL << 30) - 2);  // two initial draws
  EXPECT_NE(snap.describe().find("keys remaining"), std::string::npos);
}

TEST(FleetKeyspace, LowWatermarkThrottlesRotationToTheBackoffInterval) {
  ManualClock clock;
  FleetConfig config;
  config.spec.n_variants = 2;
  config.spec.variations = {"address-partitioning"};
  config.pool_size = 2;
  config.queue_capacity = 8;
  config.seed = 0x10;
  config.keyspace_low_watermark = 16;  // the whole space counts as low
  config.rotation_backoff = milliseconds(1000);
  config.clock = clock.fn();
  VariantFleet fleet(config);

  // First rotation under low water is admitted; the next must wait out the
  // backoff on the injected clock.
  ASSERT_EQ(fleet.rotate_fleet(), 2u);
  ASSERT_TRUE(
      wait_until([&] { return fleet.telemetry().snapshot().sessions_rotated == 2u; }));
  EXPECT_EQ(fleet.rotate_fleet(), 0u);
  EXPECT_EQ(fleet.rotate_fleet(), 0u);

  clock.advance(milliseconds(1000));
  ASSERT_EQ(fleet.rotate_fleet(), 2u);
  ASSERT_TRUE(
      wait_until([&] { return fleet.telemetry().snapshot().sessions_rotated == 4u; }));
  EXPECT_EQ(fleet.telemetry().snapshot().rotations_failed, 0u);
}

TEST(FleetKeyspace, RotationDeadlineSwapsTheSessionUnderATooSlowJob) {
  // ROADMAP follow-on: lazy rotation let a long-running job pin its lane's
  // stale reexpression indefinitely. With a rotation deadline, the flag that
  // outlives it force-installs the replacement while the job keeps running
  // against the (parked) old session.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 8;
  config.seed = 0xDEAD11;
  config.rotation_deadline = milliseconds(5000);
  // Strict lane affinity: round-robin admission then fully determines which
  // lane runs which job (no steal can move a gated job to the other lane).
  config.work_stealing = false;
  config.clock = clock.fn();
  VariantFleet fleet(config);
  const auto before = fleet.live_fingerprints();

  // Pin BOTH lanes mid-job, then order a fleet-wide rotation.
  harness::GatedJob first;
  harness::GatedJob second;
  auto first_outcome = fleet.submit(first.job());
  auto second_outcome = fleet.submit(second.job());
  first.wait_started();
  second.wait_started();
  ASSERT_EQ(fleet.rotate_fleet(), 2u);

  // Deadline not reached: the stale sessions stay pinned.
  EXPECT_EQ(fleet.poll_adaptive(), 0u);
  EXPECT_EQ(fleet.live_fingerprints(), before);

  // Past the deadline the operator poll force-rotates both lanes even though
  // their jobs are still running.
  clock.advance(milliseconds(5000));
  EXPECT_EQ(fleet.poll_adaptive(), 2u);
  const auto after = fleet.live_fingerprints();
  EXPECT_NE(after[0], before[0]);
  EXPECT_NE(after[1], before[1]);
  EXPECT_EQ(fleet.telemetry().snapshot().sessions_rotated, 2u);

  // The displaced sessions stay alive until their jobs finish — cleanly.
  first.release();
  second.release();
  EXPECT_TRUE(first_outcome.get().ok());
  EXPECT_TRUE(second_outcome.get().ok());
  EXPECT_TRUE(fleet.submit(jobs::uid_churn(3)).get().ok());
  EXPECT_EQ(fleet.live_fingerprints(), after);  // clean jobs don't re-rotate
}

TEST(FleetKeyspace, IdleFleetEnforcesRotationDeadlineOnClockAdvance) {
  // Regression: the deadline used to be checked only inside poll_adaptive()
  // and job completion, so an idle fleet with no operator tick never
  // enforced it — a pinned stale session outlived its deadline for as long
  // as nobody happened to poll. notify_time_advanced() now enforces it, so
  // subscribing the fleet to the ManualClock is enough.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 8;
  config.seed = 0xDEAD33;
  config.rotation_deadline = milliseconds(2000);
  config.work_stealing = false;
  config.clock = clock.fn();
  VariantFleet fleet(config);
  clock.subscribe([&fleet] { fleet.notify_time_advanced(); });
  const auto before = fleet.live_fingerprints();

  // Pin BOTH lanes mid-job so rotate_fleet() can only flag, then go idle:
  // no polls, no further submissions.
  harness::GatedJob first;
  harness::GatedJob second;
  auto first_outcome = fleet.submit(first.job());
  auto second_outcome = fleet.submit(second.job());
  first.wait_started();
  second.wait_started();
  ASSERT_EQ(fleet.rotate_fleet(), 2u);
  EXPECT_EQ(fleet.live_fingerprints(), before);  // deadline not reached

  // The clock advance ALONE must force-install the replacements.
  clock.advance(milliseconds(2000));
  const auto after = fleet.live_fingerprints();
  EXPECT_NE(after[0], before[0]);
  EXPECT_NE(after[1], before[1]);
  EXPECT_EQ(fleet.telemetry().snapshot().sessions_rotated, 2u);

  first.release();
  second.release();
  EXPECT_TRUE(first_outcome.get().ok());
  EXPECT_TRUE(second_outcome.get().ok());
}

TEST(FleetKeyspace, SubmissionEnforcesRotationDeadlineWithoutAnyPoll) {
  // The other half of the regression fix: a fleet nobody subscribed to the
  // clock still must not ADMIT new work past a stale deadline — submit() and
  // try_submit() enforce it on entry.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 8;
  config.seed = 0xDEAD44;
  config.rotation_deadline = milliseconds(2000);
  config.work_stealing = false;
  config.clock = clock.fn();
  VariantFleet fleet(config);
  const auto before = fleet.live_fingerprints();

  harness::GatedJob first;
  harness::GatedJob second;
  auto first_outcome = fleet.submit(first.job());
  auto second_outcome = fleet.submit(second.job());
  first.wait_started();
  second.wait_started();
  ASSERT_EQ(fleet.rotate_fleet(), 2u);
  clock.advance(milliseconds(2000));
  EXPECT_EQ(fleet.live_fingerprints(), before);  // nobody looked yet

  // The next admission — not its completion — performs the force-swap.
  auto queued = fleet.try_submit(jobs::uid_churn(3));
  ASSERT_TRUE(queued.has_value());
  const auto after = fleet.live_fingerprints();
  EXPECT_NE(after[0], before[0]);
  EXPECT_NE(after[1], before[1]);
  EXPECT_EQ(fleet.telemetry().snapshot().sessions_rotated, 2u);

  first.release();
  second.release();
  EXPECT_TRUE(first_outcome.get().ok());
  EXPECT_TRUE(second_outcome.get().ok());
  EXPECT_TRUE(queued->get().ok());
}

TEST(FleetKeyspace, DisplacedSessionQuarantineKeepsTheFreshReplacement) {
  // The deadline swap interacting with detection: when the too-slow job then
  // ALARMS, the quarantine must be recorded against the displaced session the
  // attacker actually faced — and the never-exposed replacement stays in
  // service instead of burning another draw.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 8;
  config.seed = 0xDEAD22;
  config.rotation_deadline = milliseconds(1000);
  // Strict lane affinity: the gated poison job must land on lane 0 (an idle
  // peer could otherwise STEAL it and run it against lane 1's session).
  config.work_stealing = false;
  config.clock = clock.fn();
  VariantFleet fleet(config);
  const auto before = fleet.live_fingerprints();

  // A gated poison job: held open like GatedJob, then throws.
  auto started = std::make_shared<std::promise<void>>();
  auto release = std::make_shared<std::promise<void>>();
  auto release_future = release->get_future().share();
  auto slow_poison = [started, release_future](core::NVariantSystem&) -> core::RunReport {
    started->set_value();
    release_future.wait();
    throw std::runtime_error("slow probe");
  };
  auto outcome = fleet.submit(slow_poison);  // round-robin: lane 0
  started->get_future().wait();

  ASSERT_EQ(fleet.rotate_fleet(), 2u);
  // Lane 1 is idle and rotates lazily on its own; lane 0 is pinned.
  ASSERT_TRUE(
      wait_until([&] { return fleet.telemetry().snapshot().sessions_rotated == 1u; }));
  clock.advance(milliseconds(1000));
  EXPECT_EQ(fleet.poll_adaptive(), 1u);  // the force-rotation of lane 0
  const auto fresh = fleet.live_fingerprints();
  EXPECT_NE(fresh[0], before[0]);

  release->set_value();
  const JobOutcome result = outcome.get();
  EXPECT_TRUE(result.session_quarantined);

  const auto log = fleet.quarantine_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].fingerprint, before[0]);           // what the attacker faced
  EXPECT_EQ(log[0].replacement_fingerprint, fresh[0]);  // already installed
  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.sessions_quarantined, 1u);
  EXPECT_EQ(snap.sessions_respawned, 0u);  // no extra draw was burned
  EXPECT_EQ(fleet.live_fingerprints()[0], fresh[0]);
  EXPECT_TRUE(fleet.submit(jobs::uid_churn(3)).get().ok());
}

}  // namespace
}  // namespace nv::fleet

// MVEE behaviour: lockstep, input replication, output-once, divergence
// detection, unshared files, detection syscalls, and fault handling.
#include <gtest/gtest.h>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "test_helpers.h"

namespace nv {
namespace {

using core::NVariantSystem;
using testing::LambdaGuest;

std::unique_ptr<NVariantSystem> fast_system(
    std::initializer_list<std::string_view> variation_names = {},
    std::initializer_list<std::string> unshared = {}, unsigned n_variants = 2) {
  return testing::build_system(std::chrono::milliseconds(500), n_variants, variation_names,
                               unshared);
}

TEST(NVariantSystem, IdenticalGuestsCompleteWithoutAlarm) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    (void)ctx.getpid();
    (void)ctx.gettime();
    ctx.exit(7);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_FALSE(report.attack_detected);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.exit_codes, (std::vector<int>{7, 7}));
}

TEST(NVariantSystem, SyscallRoundsAreCounted) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    for (int i = 0; i < 5; ++i) (void)ctx.getpid();
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  // Under the default pipelined mode getpid is a completion-class call: the
  // 5 getpids drain through the async ring and only exit is a barrier round.
  EXPECT_EQ(report.syscall_rounds, 1u);
  EXPECT_EQ(report.async_completions, 5u);
  EXPECT_EQ(report.syscall_batches, 0u);
}

TEST(NVariantSystem, LockstepModeCountsEveryCallAsARound) {
  const auto system_owner = core::NVariantSystem::Builder()
                                .rendezvous_timeout(std::chrono::milliseconds(2000))
                                .pipeline(core::PipelineMode::kLockstep)
                                .build();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    for (int i = 0; i < 5; ++i) (void)ctx.getpid();
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.syscall_rounds, 6u);  // 5 getpid + exit, one barrier each
  EXPECT_EQ(report.async_completions, 0u);
}

TEST(NVariantSystem, SharedFileReadIsReplicatedIdentically) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  ASSERT_TRUE(system.fs().write_file("/data.txt", "hello world", os::Credentials::root()));
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto content = ctx.read_file("/data.txt");
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ(*content, "hello world");
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(NVariantSystem, SharedWritePerformedOnce) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto fd = ctx.open("/out.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
    ASSERT_TRUE(fd.has_value());
    ASSERT_TRUE(ctx.write(*fd, "once").has_value());
    (void)ctx.close(*fd);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  ASSERT_TRUE(report.completed);
  // Two variants wrote, but the file contains the payload exactly once.
  auto content = system.fs().read_file("/out.txt", os::Credentials::root());
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "once");
}

TEST(NVariantSystem, DivergentSyscallNumbersRaiseAlarm) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    if (ctx.variant() == 0) {
      (void)ctx.getpid();
    } else {
      (void)ctx.gettime();
    }
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kSyscallMismatch);
}

TEST(NVariantSystem, DivergentWritePayloadsRaiseAlarm) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto fd = ctx.open("/log", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
    ASSERT_TRUE(fd.has_value());
    (void)ctx.write(*fd, ctx.variant() == 0 ? "AAA" : "BBB");
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

TEST(NVariantSystem, MemoryFaultInOneVariantRaisesAlarm) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    (void)ctx.getpid();  // one clean rendezvous first
    if (ctx.variant() == 1) {
      (void)ctx.memory().load_u8(0xDEAD0000);  // unmapped -> fault
    }
    (void)ctx.getpid();
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kMemoryFault);
  EXPECT_EQ(report.alarm->variant, 1u);
}

TEST(NVariantSystem, ExitCodeDivergenceDetected) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) { ctx.exit(ctx.variant() == 0 ? 0 : 1); });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

TEST(NVariantSystem, VariantThatStopsMakingSyscallsTimesOut) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    if (ctx.variant() == 0) {
      (void)ctx.getpid();
    } else {
      // Variant 1 "spins" (returns without syscalls and without exit, so the
      // implicit exit arrives while variant 0 waits at getpid — a mismatch),
      // or in the timeout case simply never arrives. Model the never-arrives
      // case with a long sleep outside syscalls.
      std::this_thread::sleep_for(std::chrono::milliseconds(1200));
      (void)ctx.getpid();
    }
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kRendezvousTimeout);
}

TEST(NVariantSystem, UnsharedFilesOpenVariantCopies) {
  const auto system_owner = fast_system({}, {"/etc/secret"});
  auto& system = *system_owner;
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system.fs().mkdir_p("/etc", root));
  ASSERT_TRUE(system.fs().write_file("/etc/secret", "canonical", root));
  ASSERT_TRUE(system.fs().write_file("/etc/secret-0", "copy zero", root));
  ASSERT_TRUE(system.fs().write_file("/etc/secret-1", "copy one", root));
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto content = ctx.read_file("/etc/secret");
    ASSERT_TRUE(content.has_value());
    // Each variant sees its own copy; asserting inside the guest checks both.
    if (ctx.variant() == 0) {
      EXPECT_EQ(*content, "copy zero");
    } else {
      EXPECT_EQ(*content, "copy one");
    }
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(NVariantSystem, UnsharedWritesLandInVariantCopies) {
  const auto system_owner = fast_system({}, {"/etc/state"});
  auto& system = *system_owner;
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system.fs().mkdir_p("/etc", root));
  ASSERT_TRUE(system.fs().write_file("/etc/state-0", "", root));
  ASSERT_TRUE(system.fs().write_file("/etc/state-1", "", root));
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto fd = ctx.open("/etc/state", os::OpenFlags::kWrite);
    ASSERT_TRUE(fd.has_value());
    // Same payload in both variants (different payloads would alarm).
    ASSERT_TRUE(ctx.write(*fd, "written").has_value());
    (void)ctx.close(*fd);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(*system.fs().read_file("/etc/state-0", root), "written");
  EXPECT_EQ(*system.fs().read_file("/etc/state-1", root), "written");
}

TEST(NVariantSystem, CondChkDivergenceRaisesConditionAlarm) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    (void)ctx.cond_chk(ctx.variant() == 0);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kConditionMismatch);
}

TEST(NVariantSystem, CondChkAgreementPasses) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    EXPECT_TRUE(ctx.cond_chk(true));
    EXPECT_FALSE(ctx.cond_chk(false));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_FALSE(report.attack_detected);
}

TEST(NVariantSystem, ThreeVariantsRunInLockstep) {
  const auto system_owner = fast_system({}, {}, 3);
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    for (int i = 0; i < 3; ++i) (void)ctx.gettime();
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.exit_codes.size(), 3u);
}

TEST(NVariantSystem, CredentialChangesStayEquivalentAcrossVariants) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    EXPECT_EQ(ctx.seteuid(1000), os::Errno::kOk);
    EXPECT_EQ(ctx.geteuid(), 1000u);
    EXPECT_EQ(ctx.seteuid(0), os::Errno::kOk);  // saved uid still root
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(NVariantSystem, AddressPartitioningGivesDisjointBases) {
  const auto system_owner = fast_system({"address-partitioning"});
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    const std::uint64_t addr = ctx.alloc(64);
    if (ctx.variant() == 0) {
      EXPECT_LT(addr, 0x80000000ULL);
    } else {
      EXPECT_GE(addr, 0x80000000ULL);
    }
    ctx.memory().store_u32(addr, 42);
    EXPECT_EQ(ctx.memory().load_u32(addr), 42u);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(NVariantSystem, InjectedAbsoluteAddressFaultsInOneVariant) {
  const auto system_owner = fast_system({"address-partitioning"});
  auto& system = *system_owner;
  // The "attacker" injects a concrete pointer that is valid for variant 0
  // only; dereferencing it faults in variant 1 (Figure 1's argument).
  LambdaGuest guest([](guest::GuestContext& ctx) {
    const std::uint64_t injected = 0x10000100;  // inside variant 0's partition
    (void)ctx.memory().load_u8(injected);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kMemoryFault);
  EXPECT_EQ(report.alarm->variant, 1u);
}

TEST(NVariantSystem, ServerModeStopsCleanly) {
  const auto system_owner = fast_system();
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto sock = ctx.socket();
    ASSERT_TRUE(sock.has_value());
    ASSERT_EQ(ctx.bind(*sock, 9090), os::Errno::kOk);
    ASSERT_EQ(ctx.listen(*sock), os::Errno::kOk);
    while (true) {
      auto conn = ctx.accept(*sock);
      if (!conn) break;  // interrupted by stop()
      (void)ctx.close(*conn);
    }
    ctx.exit(0);
  });
  guest::launch_nvariant(system, guest);
  // Give the server a moment to reach accept, then shut down.
  ASSERT_TRUE(testing::wait_for_bind(system.hub(), 9090));
  auto conn = system.hub().connect(9090);
  if (conn) conn->close();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto report = system.stop();
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

}  // namespace
}  // namespace nv

// The async/batched syscall pipeline at system level: batch coalescing and
// class-boundary splits, whole-batch abort semantics, pipelined-vs-lockstep
// equivalence, and golden-trace determinism for batched runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/nvariant_system.h"
#include "fleet/ops.h"
#include "guest/runners.h"
#include "obs/exporters.h"
#include "obs/trace.h"
#include "test_helpers.h"

namespace nv {
namespace {

using core::NVariantSystem;
using core::PipelineMode;
using testing::LambdaGuest;

std::unique_ptr<NVariantSystem> pipeline_system(PipelineMode mode,
                                                std::shared_ptr<obs::TraceRecorder> trace = {}) {
  core::NVariantSystem::Builder builder;
  builder.n_variants(2).rendezvous_timeout(std::chrono::milliseconds(2000)).pipeline(mode);
  if (trace) builder.trace(std::move(trace));
  return builder.build();
}

TEST(SyscallPipeline, WriteBatchCoalescesIntoOneBarrierRound) {
  const auto system_owner = pipeline_system(PipelineMode::kPipelined);
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto fd = ctx.open("/out.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
    ASSERT_TRUE(fd.has_value());
    const auto wrote = ctx.write_batch(*fd, {"alpha", "beta", "gamma"});
    ASSERT_TRUE(wrote.has_value());
    EXPECT_EQ(*wrote, 14u);
    (void)ctx.close(*fd);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  ASSERT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
  // open + (3-call write batch) + close + exit = 4 barrier rounds, one of
  // which coalesced more than one call.
  EXPECT_EQ(report.syscall_rounds, 4u);
  EXPECT_EQ(report.syscall_batches, 1u);
  // Output-once still holds: the batch executed each position exactly once.
  auto content = system.fs().read_file("/out.txt", os::Credentials::root());
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "alphabetagamma");
}

TEST(SyscallPipeline, BatchSplitsOnClassBoundary) {
  const auto system_owner = pipeline_system(PipelineMode::kPipelined);
  auto& system = *system_owner;
  ASSERT_TRUE(system.fs().write_file("/in.txt", "abcdef", os::Credentials::root()));
  LambdaGuest guest([](guest::GuestContext& ctx) {
    auto in = ctx.open("/in.txt", os::OpenFlags::kRead);
    auto out = ctx.open("/out.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
    ASSERT_TRUE(in.has_value());
    ASSERT_TRUE(out.has_value());
    // One guest-visible batch mixing input-class reads with output-class
    // writes: the pipeline must split it at the class boundary (two barrier
    // rounds), never compare a read against a write.
    vkernel::SyscallBatch batch;
    for (int i = 0; i < 2; ++i) {
      vkernel::SyscallArgs read;
      read.no = vkernel::Sys::kRead;
      read.ints = {static_cast<std::uint64_t>(*in), 3};
      batch.calls.push_back(std::move(read));
    }
    for (const char* payload : {"x", "y"}) {
      vkernel::SyscallArgs write;
      write.no = vkernel::Sys::kWrite;
      write.ints = {static_cast<std::uint64_t>(*out)};
      write.strs = {payload};
      batch.calls.push_back(std::move(write));
    }
    const auto results = ctx.raw_syscall_batch(batch);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].data, "abc");
    EXPECT_EQ(results[1].data, "def");
    (void)ctx.close(*in);
    (void)ctx.close(*out);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  ASSERT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
  // 2 opens + 2 sub-batches + 2 closes + exit = 7 rounds; both sub-batches
  // carried more than one call.
  EXPECT_EQ(report.syscall_rounds, 7u);
  EXPECT_EQ(report.syscall_batches, 2u);
  auto content = system.fs().read_file("/out.txt", os::Credentials::root());
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "xy");
}

TEST(SyscallPipeline, DivergenceMidBatchAbortsTheWholeBatch) {
  const auto system_owner = pipeline_system(PipelineMode::kPipelined);
  auto& system = *system_owner;
  std::atomic<int> batch_aborts{0};
  LambdaGuest guest([&](guest::GuestContext& ctx) {
    auto fd = ctx.open("/out.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
    ASSERT_TRUE(fd.has_value());
    vkernel::SyscallBatch batch;
    for (const std::string& payload :
         {std::string("same"),
          ctx.variant() == 0 ? std::string("ours") : std::string("theirs")}) {
      vkernel::SyscallArgs write;
      write.no = vkernel::Sys::kWrite;
      write.ints = {static_cast<std::uint64_t>(*fd)};
      write.strs = {payload};
      batch.calls.push_back(std::move(write));
    }
    try {
      (void)ctx.raw_syscall_batch(batch);
    } catch (const core::DivergenceAbort&) {
      // The batch diverged at position 1; position 0's result must NOT leak
      // back to the guest — the whole batch throws.
      batch_aborts.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_FALSE(report.completed);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
  EXPECT_EQ(batch_aborts.load(std::memory_order_relaxed), 2);
}

TEST(SyscallPipeline, PipelinedAndLockstepProduceIdenticalGuestResults) {
  // The pipeline is a performance refactor, not a semantics change: the same
  // guest must observe the same values and leave the same filesystem state
  // whether every call pays a barrier or not.
  const auto run_mode = [](PipelineMode mode) {
    auto system_owner = pipeline_system(mode);
    auto& system = *system_owner;
    EXPECT_TRUE(system.fs().write_file("/in.txt", "payload", os::Credentials::root()));
    LambdaGuest guest([](guest::GuestContext& ctx) {
      const auto pid = ctx.getpid();
      (void)ctx.gettime();
      auto content = ctx.read_file("/in.txt");
      ASSERT_TRUE(content.has_value());
      auto out = ctx.open("/out.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
      ASSERT_TRUE(out.has_value());
      ASSERT_TRUE(ctx.write_batch(*out, {*content, "-done"}).has_value());
      (void)ctx.close(*out);
      ctx.exit(static_cast<int>(pid % 100));
    });
    const auto report = guest::run_nvariant(system, guest);
    auto content = system.fs().read_file("/out.txt", os::Credentials::root());
    EXPECT_TRUE(content.has_value());
    return std::make_tuple(report.completed, report.exit_codes,
                           content.has_value() ? *content : std::string());
  };
  const auto pipelined = run_mode(PipelineMode::kPipelined);
  const auto lockstep = run_mode(PipelineMode::kLockstep);
  EXPECT_TRUE(std::get<0>(pipelined));
  EXPECT_EQ(pipelined, lockstep);
  EXPECT_EQ(std::get<2>(pipelined), "payload-done");
}

TEST(SyscallPipeline, GoldenTraceWithBatchesExportsDeterministicCausalChain) {
  // Determinism contract for batched runs: same guest, same ManualClock =>
  // byte-identical Chrome traces, with the batch rounds visible as
  // syscall_batch events (a = first call's syscall, b = batch size).
  const auto run_once = [] {
    fleet::ManualClock clock;
    obs::TraceConfig config;
    config.syscall_round_sample = 1;  // keep every round: the full chain
    auto recorder = std::make_shared<obs::TraceRecorder>(config, clock.fn());
    auto system_owner = pipeline_system(PipelineMode::kPipelined, recorder);
    auto& system = *system_owner;
    LambdaGuest guest([](guest::GuestContext& ctx) {
      auto fd = ctx.open("/out.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
      ASSERT_TRUE(fd.has_value());
      ASSERT_TRUE(ctx.write_batch(*fd, {"a", "b", "c", "d"}).has_value());
      (void)ctx.close(*fd);
      for (int i = 0; i < 3; ++i) (void)ctx.getpid();
      ctx.exit(0);
    });
    const auto report = guest::run_nvariant(system, guest);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.syscall_batches, 1u);
    EXPECT_EQ(report.async_completions, 3u);
    return obs::to_chrome_trace(*recorder);
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_NE(first.find("\"syscall_batch\""), std::string::npos);
  EXPECT_NE(first.find("\"syscall_round\""), std::string::npos);
}

}  // namespace
}  // namespace nv

// The variant fleet: session stamping with fresh per-session diversity
// draws, concurrent dispatch over a bounded queue, the detect -> quarantine
// -> respawn recovery loop under injected attacks, and fleet-wide telemetry.
// Deterministic throughout (seeded draws, promise-gated jobs — see
// fleet_test_harness.h); the ops layer (campaigns, stealing, drain) is
// covered in test_fleet_ops.cpp.
#include <gtest/gtest.h>

#include <future>
#include <set>

#include "fleet/fleet.h"
#include "fleet/jobs.h"
#include "fleet/session_factory.h"
#include "fleet/telemetry.h"
#include "fleet_test_harness.h"
#include "variants/registry.h"

namespace nv::fleet {
namespace {

using harness::GatedJob;
using harness::uid_spec;

httpd::ServerConfig httpd_config(std::uint32_t max_requests) {
  httpd::ServerConfig config;
  config.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
  config.max_requests = max_requests;
  return config;
}

// --- SessionFactory ---------------------------------------------------------

TEST(SessionFactory, DrawsFreshDiversityParamsPerSession) {
  SessionFactory factory(uid_spec(), /*seed=*/42, variants::builtin_registry());
  auto first = factory.make_session();
  auto second = factory.make_session();
  ASSERT_TRUE(first.has_value()) << first.error();
  ASSERT_TRUE(second.has_value()) << second.error();

  EXPECT_NE(first->id, second->id);
  EXPECT_TRUE(first->system->sealed());
  EXPECT_EQ(first->system->n_variants(), 2u);

  // No two sessions share a reexpression: the drawn uid masks differ.
  ASSERT_TRUE(first->drawn_params.contains("uid-xor.mask"));
  ASSERT_TRUE(second->drawn_params.contains("uid-xor.mask"));
  EXPECT_NE(first->drawn_params.at("uid-xor.mask"), second->drawn_params.at("uid-xor.mask"));
  EXPECT_NE(first->fingerprint, second->fingerprint);

  // Drawn masks respect the uid-variation envelope: non-zero, high bit clear,
  // bit 30 set (so shifted per-variant masks stay distinct).
  for (const auto* session : {&*first, &*second}) {
    const std::uint64_t mask = session->drawn_params.at("uid-xor.mask");
    EXPECT_EQ(mask & ~0x7FFFFFFFULL, 0u);
    EXPECT_NE(mask & 0x40000000ULL, 0u);
  }
}

TEST(SessionFactory, SameSeedReproducesTheSameDraws) {
  SessionFactory a(uid_spec(), /*seed=*/7, variants::builtin_registry());
  SessionFactory b(uid_spec(), /*seed=*/7, variants::builtin_registry());
  auto sa = a.make_session();
  auto sb = b.make_session();
  ASSERT_TRUE(sa.has_value() && sb.has_value());
  EXPECT_EQ(sa->fingerprint, sb->fingerprint);
  EXPECT_EQ(sa->drawn_params, sb->drawn_params);
}

TEST(SessionFactory, RandomizeOffUsesRegistryDefaults) {
  SessionSpec spec = uid_spec();
  spec.randomize = false;
  SessionFactory factory(spec, /*seed=*/42, variants::builtin_registry());
  auto first = factory.make_session();
  auto second = factory.make_session();
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_TRUE(first->drawn_params.empty());
  // Only the session id distinguishes the fingerprints.
  EXPECT_NE(first->fingerprint.find("uid-xor"), std::string::npos);
}

TEST(SessionFactory, MultiVariationSuiteDrawsAllParams) {
  SessionSpec spec;
  spec.n_variants = 3;
  spec.variations = {"uid-xor", "extended-address-partitioning", "instruction-tagging"};
  SessionFactory factory(spec, /*seed=*/11, variants::builtin_registry());
  auto session = factory.make_session();
  ASSERT_TRUE(session.has_value()) << session.error();
  EXPECT_TRUE(session->drawn_params.contains("uid-xor.mask"));
  EXPECT_TRUE(session->drawn_params.contains("extended-address-partitioning.seed"));
  EXPECT_TRUE(session->drawn_params.contains("instruction-tagging.base-tag"));
  // The drawn base tag leaves headroom for every variant's tag in one byte.
  EXPECT_LE(session->drawn_params.at("instruction-tagging.base-tag") + spec.n_variants - 1,
            0xFFu);
  EXPECT_EQ(session->system->n_variants(), 3u);
}

TEST(SessionFactory, UnknownVariationIsAnExpectedError) {
  SessionSpec spec = uid_spec();
  spec.variations = {"no-such-variation"};
  SessionFactory factory(spec, /*seed=*/1, variants::builtin_registry());
  auto session = factory.make_session();
  ASSERT_FALSE(session.has_value());
  EXPECT_NE(session.error().find("no-such-variation"), std::string::npos);
}

// --- FleetTelemetry ---------------------------------------------------------

TEST(FleetTelemetry, MergesLaneSamplesIntoFleetPercentiles) {
  FleetTelemetry telemetry(3);
  // 99 samples spread round-robin over the lanes: percentiles must be
  // computed over the UNION, not any single lane.
  for (int i = 1; i <= 99; ++i) {
    telemetry.record_latency(static_cast<unsigned>(i % 3), static_cast<double>(i));
    telemetry.note_completed();
  }
  const FleetSnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.jobs_completed, 99u);
  EXPECT_EQ(snap.latency_count, 99u);
  EXPECT_DOUBLE_EQ(snap.latency_p50_us, 50.0);
  // Linear interpolation between order statistics: rank p/100 * (n-1).
  EXPECT_NEAR(snap.latency_p95_us, 94.1, 1e-9);
  EXPECT_NEAR(snap.latency_p99_us, 98.02, 1e-9);
  EXPECT_NE(snap.describe().find("99 completed"), std::string::npos);
}

// --- VariantFleet: dispatch -------------------------------------------------

TEST(VariantFleet, CompletesConcurrentJobsAcrossThePool) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 3;
  config.queue_capacity = 32;
  VariantFleet fleet(config);

  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 9; ++i) futures.push_back(fleet.submit(jobs::uid_churn(25)));
  std::set<std::uint64_t> sessions_used;
  for (auto& future : futures) {
    const JobOutcome outcome = future.get();
    EXPECT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_TRUE(outcome.report.completed);
    EXPECT_FALSE(outcome.session_quarantined);
    EXPECT_GT(outcome.report.syscall_rounds, 0u);
    sessions_used.insert(outcome.session_id);
  }
  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.jobs_submitted, 9u);
  EXPECT_EQ(snap.jobs_completed, 9u);
  EXPECT_EQ(snap.jobs_alarmed, 0u);
  EXPECT_EQ(snap.sessions_quarantined, 0u);
  EXPECT_EQ(snap.latency_count, 9u);
  EXPECT_GT(snap.latency_p50_us, 0.0);
  EXPECT_GT(snap.syscall_rounds, 0u);
  EXPECT_EQ(fleet.live_fingerprints().size(), 3u);
}

TEST(VariantFleet, BackpressureBoundsTheAdmissionQueue) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 1;
  config.queue_capacity = 1;
  VariantFleet fleet(config);

  // Occupy the single worker with a job that blocks until released.
  GatedJob gated;
  auto blocker = fleet.submit(gated.job());
  gated.wait_started();

  // Fill the queue's single slot, then verify admission control refuses more.
  auto queued = fleet.try_submit(jobs::uid_churn(5));
  ASSERT_TRUE(queued.has_value());
  auto refused = fleet.try_submit(jobs::uid_churn(5));
  EXPECT_FALSE(refused.has_value());
  EXPECT_EQ(fleet.queue_depth(), 1u);

  gated.release();
  EXPECT_TRUE(blocker.get().ok());
  EXPECT_TRUE(queued->get().ok());
  EXPECT_GE(fleet.telemetry().snapshot().jobs_rejected, 1u);
}

// --- VariantFleet: the recovery loop ----------------------------------------

TEST(VariantFleet, DetectQuarantineRespawnUnderConcurrentAttack) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 3;
  config.queue_capacity = 32;
  config.seed = 0xD1CE;
  VariantFleet fleet(config);
  const std::vector<std::string> initial_fleet = fleet.live_fingerprints();

  // Interleave benign request streams with Chen-style UID-smash attacks so
  // attacked and healthy sessions run concurrently.
  std::vector<std::future<JobOutcome>> normal;
  std::vector<std::future<JobOutcome>> attacked;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 3; ++i) {
      normal.push_back(
          fleet.submit(jobs::httpd_request_stream(httpd_config(4), jobs::normal_browse(4))));
    }
    attacked.push_back(
        fleet.submit(jobs::httpd_request_stream(httpd_config(10), jobs::uid_smash_attack())));
  }

  // Every attacked session raises an alarm and is quarantined.
  for (auto& future : attacked) {
    const JobOutcome outcome = future.get();
    EXPECT_TRUE(outcome.report.attack_detected);
    EXPECT_TRUE(outcome.session_quarantined);
    ASSERT_TRUE(outcome.report.alarm.has_value());
    EXPECT_EQ(outcome.report.alarm->kind, core::AlarmKind::kUidCheckFailed);
  }
  // Non-attacked jobs all complete, unaffected by the quarantines around them.
  for (auto& future : normal) {
    const JobOutcome outcome = future.get();
    EXPECT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_TRUE(outcome.report.completed);
  }

  // Forensics: each quarantine record retains the alarm and fingerprint, and
  // the respawned replacement drew DIFFERENT diversity parameters.
  const auto log = fleet.quarantine_log();
  ASSERT_EQ(log.size(), 3u);
  for (const auto& record : log) {
    EXPECT_EQ(record.alarm.kind, core::AlarmKind::kUidCheckFailed);
    EXPECT_TRUE(record.report.attack_detected);
    EXPECT_NE(record.replacement_id, record.session_id);
    EXPECT_NE(record.replacement_fingerprint, record.fingerprint);
    EXPECT_NE(record.replacement_fingerprint.find("uid-xor"), std::string::npos);
  }

  // The fleet kept its full strength: three live re-diversified sessions.
  const auto final_fleet = fleet.live_fingerprints();
  EXPECT_EQ(final_fleet.size(), 3u);

  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.jobs_alarmed, 3u);
  EXPECT_EQ(snap.jobs_completed, 9u);
  EXPECT_EQ(snap.sessions_quarantined, 3u);
  EXPECT_EQ(snap.sessions_respawned, 3u);
  EXPECT_EQ(snap.latency_count, 12u);
}

TEST(VariantFleet, FtpSiteAttackIsDetectedAndQuarantined) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 8;
  VariantFleet fleet(config);

  httpd::FtpdConfig ftpd;
  ftpd.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
  ftpd.max_sessions = 1;
  auto benign = fleet.submit(jobs::ftpd_command_stream(ftpd, jobs::ftp_normal_session()));
  auto attack = fleet.submit(jobs::ftpd_command_stream(ftpd, jobs::ftp_site_attack()));

  const JobOutcome benign_outcome = benign.get();
  EXPECT_TRUE(benign_outcome.ok()) << benign_outcome.error;
  const JobOutcome attack_outcome = attack.get();
  EXPECT_TRUE(attack_outcome.report.attack_detected);
  EXPECT_TRUE(attack_outcome.session_quarantined);
}

TEST(VariantFleet, JobExceptionQuarantinesTheSessionAndFleetRecovers) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 8;
  VariantFleet fleet(config);

  auto faulty = fleet.submit(
      [](core::NVariantSystem&) -> core::RunReport { throw std::runtime_error("job bug"); });
  const JobOutcome outcome = faulty.get();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error, "job bug");
  EXPECT_TRUE(outcome.session_quarantined);

  const auto log = fleet.quarantine_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].alarm.kind, core::AlarmKind::kGuestError);

  // The replacement session serves follow-up work.
  EXPECT_TRUE(fleet.submit(jobs::uid_churn(10)).get().ok());
  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.job_errors, 1u);
  EXPECT_EQ(snap.sessions_respawned, 1u);
}

TEST(VariantFleet, ShutdownDrainsQueuedJobsThenRefusesNewOnes) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  auto fleet = std::make_unique<VariantFleet>(config);

  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(fleet->submit(jobs::uid_churn(10)));
  fleet->shutdown();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());  // drained, not dropped
  EXPECT_THROW((void)fleet->submit(jobs::uid_churn(1)), std::runtime_error);
  EXPECT_FALSE(fleet->try_submit(jobs::uid_churn(1)).has_value());
}

}  // namespace
}  // namespace nv::fleet

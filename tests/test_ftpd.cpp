// mini-ftpd: the wu-ftpd-style second case study. Auth, per-user access
// control, the SITE overrun -> REIN escalation attack on the unprotected
// baseline, and its detection under the UID variation. Also exercises the
// synchronized event-delivery extension.
#include <gtest/gtest.h>

#include <thread>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "httpd/mini_ftpd.h"
#include "util/strings.h"
#include "test_helpers.h"

namespace nv {
namespace {

using httpd::FtpdConfig;
using httpd::MiniFtpd;

constexpr std::uint16_t kPort = 2121;

/// Simple scripted FTP client: sends each command, returns all replies.
std::vector<std::string> ftp_session(vkernel::SocketHub& hub,
                                     const std::vector<std::string>& commands) {
  std::vector<std::string> replies;
  auto conn = hub.connect(kPort);
  if (!conn) return replies;
  auto greeting = conn->recv_until("\r\n");
  if (greeting) replies.push_back(std::string(util::trim(*greeting)));
  for (const auto& command : commands) {
    if (!conn->send(command + "\r\n")) break;
    auto reply = conn->recv_until("\r\n");
    if (!reply || reply->empty()) break;
    replies.push_back(std::string(util::trim(*reply)));
  }
  conn->close();
  return replies;
}

std::string attack_site_arg(std::uint32_t buffer_size) {
  // Fill the buffer and overwrite the adjacent session UID with "0000"...
  // almost: the bytes must be non-space to survive tokenization, so the
  // attacker writes printable filler then uses a second, shorter trick: the
  // overrun value is the four NUL bytes appended below.
  std::string arg(buffer_size, 'A');
  arg += std::string(4, '\0');  // session_uid <- 0 (root) in raw bytes
  return arg;
}

void wait_for_bind(vkernel::SocketHub& hub) {
  ASSERT_TRUE(testing::wait_for_bind(hub, kPort));
}

// --- plain (unprotected) ----------------------------------------------------

struct PlainFtpd {
  vfs::FileSystem fs;
  vkernel::SocketHub hub;
  vkernel::KernelContext ctx{fs, hub};
  MiniFtpd server;
  std::thread thread;
  guest::PlainRunResult result;

  explicit PlainFtpd(FtpdConfig config) : server(config) {
    httpd::install_ftpd_site(fs, config);
    thread = std::thread([this] { result = guest::run_plain(ctx, server); });
    wait_for_bind(hub);
  }
  ~PlainFtpd() {
    hub.shutdown();
    if (thread.joinable()) thread.join();
  }
};

FtpdConfig plain_config(std::uint32_t sessions) {
  FtpdConfig config;
  config.uid_ops_mode = guest::UidOpsMode::kPlain;
  config.max_sessions = sessions;
  return config;
}

TEST(MiniFtpdPlain, LoginAndRetrOwnFile) {
  PlainFtpd s(plain_config(1));
  const auto replies = ftp_session(
      s.hub, {"USER alice", "PASS wonderland", "RETR /home/alice/notes.txt", "QUIT"});
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(replies[1], "331 need password");
  EXPECT_EQ(replies[2], "230 logged in");
  EXPECT_EQ(replies[3], "150 alice's notes");
  EXPECT_EQ(replies[4], "221 bye");
}

TEST(MiniFtpdPlain, WrongPasswordRejected) {
  PlainFtpd s(plain_config(1));
  const auto replies = ftp_session(s.hub, {"USER alice", "PASS nope", "QUIT"});
  ASSERT_GE(replies.size(), 3u);
  EXPECT_EQ(replies[2], "530 denied");
}

TEST(MiniFtpdPlain, UnknownUserRejected) {
  PlainFtpd s(plain_config(1));
  const auto replies = ftp_session(s.hub, {"USER mallory", "QUIT"});
  ASSERT_GE(replies.size(), 2u);
  EXPECT_EQ(replies[1], "530 unknown user");
}

TEST(MiniFtpdPlain, CannotReadOtherUsersFiles) {
  PlainFtpd s(plain_config(1));
  const auto replies = ftp_session(
      s.hub, {"USER alice", "PASS wonderland", "RETR /home/bob/todo.txt", "QUIT"});
  ASSERT_GE(replies.size(), 4u);
  EXPECT_EQ(replies[3], "550 denied");
}

TEST(MiniFtpdPlain, CannotReadRootOnlyFile) {
  PlainFtpd s(plain_config(1));
  const auto replies =
      ftp_session(s.hub, {"USER alice", "PASS wonderland", "RETR /etc/master.key", "QUIT"});
  ASSERT_GE(replies.size(), 4u);
  EXPECT_EQ(replies[3], "550 denied");
}

TEST(MiniFtpdPlain, SiteOverrunPlusReinEscalatesToRoot) {
  // The Chen et al. wu-ftpd attack, end to end, against the unprotected
  // daemon: corrupt the stored session UID, force a reinitialize, read a
  // root-only file.
  PlainFtpd s(plain_config(1));
  const auto replies = ftp_session(s.hub, {"USER alice", "PASS wonderland",
                                           "SITE " + attack_site_arg(128), "REIN", "WHOAMI",
                                           "RETR /etc/master.key", "QUIT"});
  ASSERT_EQ(replies.size(), 8u);
  EXPECT_EQ(replies[3], "200 site ok");
  EXPECT_EQ(replies[4], "220 reinitialized");
  EXPECT_EQ(replies[5], "211 root");                  // compromised
  EXPECT_EQ(replies[6], "150 ROOT-ONLY-KEY");       // proof: root-only data
}

// --- 2-variant UID variation -------------------------------------------------

struct NvFtpd {
  std::unique_ptr<core::NVariantSystem> system;
  MiniFtpd server;

  explicit NvFtpd(FtpdConfig config) : server(config) {
    system = testing::build_system(std::chrono::milliseconds(1000), 2, {"uid-xor"});
    httpd::install_ftpd_site(system->fs(), config);
    guest::launch_nvariant(*system, server);
    wait_for_bind(system->hub());
  }
  core::RunReport finish() { return system->stop(); }
};

FtpdConfig nv_config(std::uint32_t sessions) {
  FtpdConfig config;
  config.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
  config.max_sessions = sessions;
  return config;
}

TEST(MiniFtpdNVariant, NormalSessionWorksWithoutAlarms) {
  NvFtpd s(nv_config(1));
  const auto replies = ftp_session(
      s.system->hub(),
      {"USER alice", "PASS wonderland", "RETR /home/alice/notes.txt", "WHOAMI", "QUIT"});
  ASSERT_EQ(replies.size(), 6u);
  EXPECT_EQ(replies[2], "230 logged in");
  EXPECT_EQ(replies[3], "150 alice's notes");
  EXPECT_EQ(replies[4], "211 user");
  const auto report = s.finish();
  EXPECT_FALSE(report.attack_detected);
  EXPECT_TRUE(report.completed);
}

TEST(MiniFtpdNVariant, AccessControlIntactAcrossVariants) {
  NvFtpd s(nv_config(1));
  const auto replies = ftp_session(
      s.system->hub(), {"USER bob", "PASS builder", "RETR /home/alice/notes.txt",
                        "RETR /home/bob/todo.txt", "QUIT"});
  ASSERT_GE(replies.size(), 5u);
  EXPECT_EQ(replies[3], "550 denied");
  EXPECT_EQ(replies[4], "150 bob's todo");
  const auto report = s.finish();
  EXPECT_FALSE(report.attack_detected);
}

TEST(MiniFtpdNVariant, SiteReinAttackDetectedAtUidValue) {
  NvFtpd s(nv_config(2));
  const auto replies = ftp_session(s.system->hub(), {"USER alice", "PASS wonderland",
                                                     "SITE " + attack_site_arg(128), "REIN",
                                                     "RETR /etc/master.key", "QUIT"});
  // The overrun is silent; REIN's uid_value exposure kills the system before
  // the corrupted UID is installed, so the client never sees the key.
  bool leaked = false;
  for (const auto& reply : replies) leaked = leaked || reply.find("ROOT-ONLY-KEY") != std::string::npos;
  EXPECT_FALSE(leaked);
  const auto report = s.finish();
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kUidCheckFailed);
}

TEST(MiniFtpdNVariant, AttackWithoutDetectionSyscallsCaughtAtSeteuid) {
  FtpdConfig config = nv_config(2);
  config.uid_ops_mode = guest::UidOpsMode::kPlain;  // §5 lower-precision mode
  NvFtpd s(config);
  (void)ftp_session(s.system->hub(), {"USER alice", "PASS wonderland",
                                      "SITE " + attack_site_arg(128), "REIN", "QUIT"});
  const auto report = s.finish();
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

// --- synchronized event delivery (extension) ---------------------------------

TEST(EventDelivery, SynchronizedEventsDoNotDiverge) {
  const auto system_owner = testing::build_system(std::chrono::milliseconds(1000));
  auto& system = *system_owner;
  // Queue events BEFORE launch; both variants must observe the identical
  // sequence at identical points (poll_event is an input-class syscall).
  system.kernel().push_event("reload-config");
  system.kernel().push_event("rotate-logs");
  testing::LambdaGuest guest([](guest::GuestContext& ctx) {
    std::vector<std::string> seen;
    while (auto event = ctx.poll_event()) seen.push_back(*event);
    EXPECT_EQ(seen, (std::vector<std::string>{"reload-config", "rotate-logs"}));
    // Event-dependent control flow stays equivalent across variants.
    (void)ctx.cond_chk(seen.size() == 2);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
}

TEST(EventDelivery, PlainKernelPollsSameQueue) {
  vfs::FileSystem fs;
  vkernel::SocketHub hub;
  vkernel::KernelContext ctx(fs, hub);
  ctx.push_event("only-one");
  testing::LambdaGuest guest([](guest::GuestContext& g) {
    auto first = g.poll_event();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, "only-one");
    EXPECT_FALSE(g.poll_event().has_value());
    g.exit(0);
  });
  EXPECT_TRUE(guest::run_plain(ctx, guest).completed);
}

}  // namespace
}  // namespace nv

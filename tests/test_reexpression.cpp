// Property tests for reexpression functions: the inverse property (§2.2) and
// the disjointedness property (§2.3), swept over mask/offset families with
// parameterized suites.
#include <gtest/gtest.h>

#include "core/reexpression.h"

namespace nv::core {
namespace {

TEST(XorMask, PaperMaskRoundTrips) {
  const XorMask r1(0x7FFFFFFF);
  EXPECT_EQ(r1.reexpress(0), 0x7FFFFFFFu);       // root's variant-1 encoding
  EXPECT_EQ(r1.invert(0x7FFFFFFF), 0u);
  EXPECT_EQ(r1.reexpress(r1.reexpress(1000)), 1000u);  // self-inverse
}

TEST(Identity, IsIdentity) {
  const Identity<os::uid_t> r0;
  for (os::uid_t u : uid_property_samples(100)) {
    EXPECT_EQ(r0.reexpress(u), u);
    EXPECT_EQ(r0.invert(u), u);
  }
}

TEST(InverseProperty, HoldsForPaperPair) {
  const auto samples = uid_property_samples(10000);
  EXPECT_TRUE(verify_inverse<os::uid_t>(Identity<os::uid_t>{}, samples));
  EXPECT_TRUE(verify_inverse<os::uid_t>(XorMask{0x7FFFFFFF}, samples));
}

TEST(DisjointednessProperty, HoldsForPaperPair) {
  const Identity<os::uid_t> r0;
  const XorMask r1(0x7FFFFFFF);
  EXPECT_TRUE(disjointedness_violations<os::uid_t>(r0, r1, uid_property_samples(10000)).empty());
}

TEST(DisjointednessProperty, FailsForEqualMasks) {
  const XorMask a(0x1234);
  const XorMask b(0x1234);
  const auto violations = disjointedness_violations<os::uid_t>(a, b, uid_property_samples(10));
  EXPECT_EQ(violations.size(), uid_property_samples(10).size());
  EXPECT_FALSE(xor_masks_disjoint(0x1234, 0x1234));
  EXPECT_TRUE(xor_masks_disjoint(0, 0x7FFFFFFF));
}

// Parameterized sweep: any pair of distinct masks is disjoint; any mask is
// self-inverse.
class MaskSweep : public ::testing::TestWithParam<os::uid_t> {};

TEST_P(MaskSweep, SelfInverse) {
  const XorMask r(GetParam());
  EXPECT_TRUE(verify_inverse<os::uid_t>(r, uid_property_samples(2000, GetParam())));
}

TEST_P(MaskSweep, DisjointFromIdentityIffNonZero) {
  const Identity<os::uid_t> r0;
  const XorMask r1(GetParam());
  const auto violations =
      disjointedness_violations<os::uid_t>(r0, r1, uid_property_samples(2000, GetParam()));
  if (GetParam() == 0) {
    EXPECT_FALSE(violations.empty());
  } else {
    EXPECT_TRUE(violations.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, MaskSweep,
                         ::testing::Values(0u, 1u, 0xFFu, 0xFF00u, 0x7FFFFFFFu, 0x3FFFFFFFu,
                                           0x55555555u, 0x0000FFFFu, 0x7F000000u));

// Address-offset family (Table 1 rows 1-2).
class OffsetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OffsetSweep, InverseHolds) {
  const AddressOffset r(GetParam());
  EXPECT_TRUE(verify_inverse<std::uint64_t>(r, address_property_samples(2000)));
}

TEST_P(OffsetSweep, DisjointFromIdentityIffNonZero) {
  const AddressOffset r0(0);
  const AddressOffset r1(GetParam());
  const auto violations =
      disjointedness_violations<std::uint64_t>(r0, r1, address_property_samples(2000));
  if (GetParam() == 0) {
    EXPECT_FALSE(violations.empty());
  } else {
    EXPECT_TRUE(violations.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetSweep,
                         ::testing::Values(0ULL, 0x1000ULL, 0x80000000ULL,
                                           0x80000000ULL + 0x7000ULL, 0xFFFFFFFFULL));

TEST(InstructionTag, PrependsAndStrips) {
  const InstructionTag r(0xA1);
  const std::vector<std::uint8_t> inst = {0x01, 0x00, 0x2A, 0x00, 0x00, 0x00};
  const auto tagged = r.reexpress(inst);
  ASSERT_EQ(tagged.size(), inst.size() + 1);
  EXPECT_EQ(tagged[0], 0xA1);
  EXPECT_EQ(r.invert(tagged), inst);
}

TEST(InstructionTag, WrongTagThrowsOnInvert) {
  const InstructionTag r0(0xA0);
  const InstructionTag r1(0xA1);
  const auto tagged_for_0 = r0.reexpress({0x05});
  EXPECT_THROW((void)r1.invert(tagged_for_0), std::runtime_error);
  EXPECT_THROW((void)r1.invert({}), std::runtime_error);
}

TEST(InstructionTag, DisjointTagsNeverBothValid) {
  // Any concrete tagged unit decodes under at most one of two distinct tags.
  const InstructionTag r0(0xA0);
  const InstructionTag r1(0xA1);
  const std::vector<std::uint8_t> injected = {0xA0, 0x05};  // attacker picks tag A0
  EXPECT_NO_THROW((void)r0.invert(injected));
  EXPECT_THROW((void)r1.invert(injected), std::runtime_error);
}

TEST(Samples, IncludeSecurityCriticalCorners) {
  const auto samples = uid_property_samples(0);
  EXPECT_NE(std::find(samples.begin(), samples.end(), 0u), samples.end());           // root
  EXPECT_NE(std::find(samples.begin(), samples.end(), os::kInvalidUid), samples.end());
  EXPECT_NE(std::find(samples.begin(), samples.end(), 0x7FFFFFFFu), samples.end());
}

TEST(Describe, HumanReadable) {
  EXPECT_EQ(XorMask(0x7FFFFFFF).describe(), "R(u) = u XOR 0x7fffffff");
  EXPECT_EQ(AddressOffset(0x80000000).describe(), "R(a) = a + 0x80000000");
  EXPECT_EQ(InstructionTag(0xA0).describe(), "R(inst) = 0xa0 || inst");
}

}  // namespace
}  // namespace nv::core

// The paper's §3 UID variation end to end: reexpression at syscall
// boundaries, unshared passwd files, detection of corruption, and the
// documented high-bit weakness.
#include <gtest/gtest.h>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "guest/uid_ops.h"
#include "test_helpers.h"
#include "variants/uid_variation.h"

namespace nv {
namespace {

using core::NVariantSystem;
using testing::LambdaGuest;
using variants::UidVariation;

std::unique_ptr<NVariantSystem> make_uid_system(unsigned n_variants = 2) {
  auto system =
      testing::build_system(std::chrono::milliseconds(500), n_variants, {"uid-xor"});
  EXPECT_TRUE(system->fs().mkdir_p("/etc", os::Credentials::root()));
  EXPECT_TRUE(system->fs().write_file("/etc/passwd",
                                      "root:x:0:0:root:/root:/bin/sh\n"
                                      "www:x:33:33:www:/var/www:/bin/false\n"
                                      "alice:x:1000:1000:Alice:/home/alice:/bin/sh\n",
                                      os::Credentials::root()));
  EXPECT_TRUE(system->fs().write_file("/etc/group", "root:x:0:\nwww:x:33:\n",
                                      os::Credentials::root()));
  return system;
}

TEST(UidVariation, MasksArePairwiseDistinct) {
  UidVariation variation;
  EXPECT_EQ(variation.mask_for(0), 0u);
  EXPECT_EQ(variation.mask_for(1), 0x7FFFFFFFu);
  EXPECT_EQ(variation.mask_for(2), 0x3FFFFFFFu);
  EXPECT_NE(variation.mask_for(1), variation.mask_for(2));
}

TEST(UidVariation, GetuidReturnsReexpressedValuePerVariant) {
  auto system = make_uid_system();
  LambdaGuest guest([](guest::GuestContext& ctx) {
    const os::uid_t euid = ctx.geteuid();
    // Variant 0 sees canonical root (0); variant 1 sees 0x7FFFFFFF.
    if (ctx.variant() == 0) {
      EXPECT_EQ(euid, 0u);
    } else {
      EXPECT_EQ(euid, 0x7FFFFFFFu);
    }
    // Either way, it equals the variant's transformed root constant.
    EXPECT_EQ(euid, ctx.uid_const(os::kRootUid));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(UidVariation, SetuidWithTransformedConstantSucceeds) {
  auto system = make_uid_system();
  LambdaGuest guest([](guest::GuestContext& ctx) {
    // The transformed program passes R_i(1000); wrappers invert to 1000.
    EXPECT_EQ(ctx.seteuid(ctx.uid_const(1000)), os::Errno::kOk);
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(1000));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(UidVariation, KernelStoresCanonicalCredentials) {
  auto system = make_uid_system();
  LambdaGuest guest([](guest::GuestContext& ctx) {
    EXPECT_EQ(ctx.setuid(ctx.uid_const(1000)), os::Errno::kOk);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(UidVariation, PasswdFilesAreDiversifiedPerVariant) {
  auto system = make_uid_system();
  LambdaGuest guest([](guest::GuestContext& ctx) {
    const auto pw = ctx.getpwnam("www");
    ASSERT_TRUE(pw.has_value());
    // The unshared passwd copy already encodes this variant's representation.
    EXPECT_EQ(pw->uid, ctx.uid_const(33));
    // And installing it round-trips through the wrapper correctly.
    EXPECT_EQ(ctx.seteuid(pw->uid), os::Errno::kOk);
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(33));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(UidVariation, InjectedIdenticalUidDetectedAtUidValue) {
  auto system = make_uid_system();
  // The attacker corrupts a stored UID with the SAME concrete value in both
  // variants (that is all the shared input channel allows). uid_value()
  // inverts per variant: 0 vs 0x7FFFFFFF -> alarm.
  LambdaGuest guest([](guest::GuestContext& ctx) {
    const os::uid_t injected = 0;  // attacker wants root
    (void)ctx.uid_value(injected);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kUidCheckFailed);
}

TEST(UidVariation, InjectedUidDetectedAtSetuidEvenWithoutDetectionSyscalls) {
  auto system = make_uid_system();
  // §5: without uid_value the attack is still caught at the next UID-carrying
  // syscall, at the cost of detection precision.
  LambdaGuest guest([](guest::GuestContext& ctx) {
    (void)ctx.seteuid(0);  // same raw value in both variants
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

TEST(UidVariation, CcComparisonAgreesOnTransformedValues) {
  auto system = make_uid_system();
  LambdaGuest guest([](guest::GuestContext& ctx) {
    guest::UidOps ops(ctx, guest::UidOpsMode::kSyscallChecked);
    const os::uid_t alice = ctx.uid_const(1000);
    const os::uid_t root = ctx.uid_const(0);
    EXPECT_TRUE(ops.lt(root, alice));   // 0 < 1000 canonically, both variants
    EXPECT_FALSE(ops.gt(root, alice));
    EXPECT_TRUE(ops.eq(root, root));
    EXPECT_TRUE(ops.is_root(root));
    EXPECT_FALSE(ops.is_root(alice));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(UidVariation, UserSpaceReversedComparisonsPreserveSemantics) {
  auto system = make_uid_system();
  LambdaGuest guest([](guest::GuestContext& ctx) {
    guest::UidOps ops(ctx, guest::UidOpsMode::kUserSpaceReversed);
    const os::uid_t alice = ctx.uid_const(1000);
    const os::uid_t bob = ctx.uid_const(1001);
    EXPECT_TRUE(ops.lt(alice, bob));
    EXPECT_TRUE(ops.leq(alice, alice));
    EXPECT_FALSE(ops.gt(alice, bob));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

TEST(UidVariation, HighBitFlipEscapesDetection) {
  auto system = make_uid_system();
  // The documented weakness (§3.2): the mask leaves the high bit unflipped,
  // so corrupting ONLY the high bit of the stored representation yields the
  // same canonical change in both variants — no divergence.
  LambdaGuest guest([](guest::GuestContext& ctx) {
    const os::uid_t stored = ctx.uid_const(1000);
    const os::uid_t corrupted = stored ^ 0x80000000u;  // same flip, both variants
    (void)ctx.uid_value(corrupted);                    // NOT detected
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_FALSE(report.attack_detected);  // faithful reproduction of the gap
  EXPECT_TRUE(report.completed);
}

TEST(UidVariation, ByteLevelOverwriteIsDetected) {
  auto system = make_uid_system();
  // §3.2: byte-level partial overwrites are the realistic remote threat, and
  // the low-byte flip lands on reexpressed bits -> canonical values diverge.
  LambdaGuest guest([](guest::GuestContext& ctx) {
    os::uid_t stored = ctx.uid_const(1000);
    stored = (stored & 0xFFFFFF00u) | 0x00000000u;  // attacker zeroes low byte
    (void)ctx.uid_value(stored);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.attack_detected);
}

TEST(UidVariation, ThreeVariantConfigurationWorks) {
  auto system = make_uid_system(3);
  LambdaGuest guest([](guest::GuestContext& ctx) {
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(0));
    EXPECT_EQ(ctx.seteuid(ctx.uid_const(7)), os::Errno::kOk);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);

  LambdaGuest attacked([](guest::GuestContext& ctx) {
    (void)ctx.uid_value(0);  // identical injected value across 3 variants
    ctx.exit(0);
  });
  auto system2 = make_uid_system(3);
  const auto report2 = guest::run_nvariant(*system2, attacked);
  EXPECT_TRUE(report2.attack_detected);
}

TEST(UidVariation, InvalidUidSentinelRoundTrips) {
  auto system = make_uid_system();
  // setreuid(-1, x): the transformed program passes R_i(-1); the wrapper
  // inverts it back to the canonical sentinel, which the kernel honours.
  LambdaGuest guest([](guest::GuestContext& ctx) {
    EXPECT_EQ(ctx.setreuid(ctx.uid_const(os::kInvalidUid), ctx.uid_const(1000)), os::Errno::kOk);
    EXPECT_EQ(ctx.getuid(), ctx.uid_const(0));      // ruid unchanged (root)
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(1000));  // euid changed
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
}

}  // namespace
}  // namespace nv

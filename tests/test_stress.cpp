// Stress and soak tests: long randomized syscall sequences in lockstep,
// fd-table churn, server soak under many requests, and concurrent clients.
#include <gtest/gtest.h>

#include <thread>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "httpd/client.h"
#include "httpd/mini_httpd.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace nv {
namespace {

using core::NVariantSystem;
using testing::LambdaGuest;

std::unique_ptr<NVariantSystem> stress_system(
    std::initializer_list<std::string_view> variation_names = {}, unsigned n_variants = 2) {
  return testing::build_system(std::chrono::milliseconds(5000), n_variants, variation_names);
}

class VariantCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(VariantCount, RandomizedSyscallSequenceStaysInLockstep) {
  const auto system_owner = stress_system({"uid-xor"}, GetParam());
  auto& system = *system_owner;
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system.fs().mkdir_p("/etc", root));
  ASSERT_TRUE(system.fs().mkdir_p("/work", root));
  ASSERT_TRUE(system.fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root));
  ASSERT_TRUE(system.fs().write_file("/etc/group", "root:x:0:\n", root));

  LambdaGuest guest([](guest::GuestContext& ctx) {
    // Deterministic per-guest RNG: every variant draws the SAME sequence, so
    // their syscall streams match — lockstep must hold across 300 rounds of
    // mixed syscalls.
    util::Rng rng{4242};
    for (int round = 0; round < 300; ++round) {
      switch (rng.below(6)) {
        case 0:
          (void)ctx.getpid();
          break;
        case 1:
          (void)ctx.gettime();
          break;
        case 2: {
          const auto name = "/work/f" + std::to_string(rng.below(8));
          auto fd = ctx.open(name, os::OpenFlags::kWrite | os::OpenFlags::kCreate);
          if (fd) {
            (void)ctx.write(*fd, "round");
            (void)ctx.close(*fd);
          }
          break;
        }
        case 3: {
          auto content = ctx.read_file("/etc/passwd");  // unshared per variant
          EXPECT_TRUE(content.has_value());
          break;
        }
        case 4: {
          const auto uid = static_cast<os::uid_t>(rng.below(5000));
          (void)ctx.seteuid(ctx.uid_const(uid));
          (void)ctx.seteuid(ctx.uid_const(0));
          break;
        }
        case 5:
          (void)ctx.cc(vkernel::CcOp::kLt, ctx.uid_const(static_cast<os::uid_t>(rng.below(100))),
                       ctx.uid_const(static_cast<os::uid_t>(rng.below(100))));
          break;
      }
    }
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
  EXPECT_GT(report.syscall_rounds, 300u);
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantCount, ::testing::Values(2u, 3u, 4u));

TEST(Stress, FdTableChurnStaysSynchronized) {
  const auto system_owner = stress_system();
  auto& system = *system_owner;
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system.fs().mkdir_p("/churn", root));
  LambdaGuest guest([](guest::GuestContext& ctx) {
    std::vector<os::fd_t> fds;
    for (int i = 0; i < 50; ++i) {
      auto fd = ctx.open("/churn/f" + std::to_string(i),
                         os::OpenFlags::kWrite | os::OpenFlags::kCreate);
      ASSERT_TRUE(fd.has_value());
      fds.push_back(*fd);
    }
    // Close even slots, reopen: freed slots must be reused identically in
    // every variant (slot synchronization).
    for (std::size_t i = 0; i < fds.size(); i += 2) (void)ctx.close(fds[i]);
    for (int i = 0; i < 25; ++i) {
      auto fd = ctx.open("/churn/g" + std::to_string(i),
                         os::OpenFlags::kWrite | os::OpenFlags::kCreate);
      ASSERT_TRUE(fd.has_value());
      EXPECT_EQ(*fd % 2, 0);  // reused an even slot
    }
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
}

TEST(Stress, HttpdSoakFiftyRequests) {
  const auto system_owner = stress_system({"uid-xor"});
  auto& system = *system_owner;
  httpd::ServerConfig config;
  config.max_requests = 50;
  httpd::install_default_site(system.fs(), config);
  httpd::MiniHttpd server;
  guest::launch_nvariant(system, server);
  ASSERT_TRUE(testing::wait_for_bind(system.hub(), 8080));

  const char* paths[] = {"/", "/page1.html", "/page2.html", "/whoami", "/secret/key.txt",
                         "/missing.html"};
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    const auto response = httpd::http_get(system.hub(), 8080, paths[i % 6]);
    if (response.status == 200 || response.status == 404) ++ok;
  }
  const auto report = system.stop();
  EXPECT_EQ(ok, 50);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
}

TEST(Stress, ConcurrentClientsAgainstSequentialServer) {
  const auto system_owner = stress_system({"uid-xor"});
  auto& system = *system_owner;
  httpd::ServerConfig config;
  config.max_requests = 30;
  httpd::install_default_site(system.fs(), config);
  httpd::MiniHttpd server;
  guest::launch_nvariant(system, server);
  ASSERT_TRUE(testing::wait_for_bind(system.hub(), 8080));

  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const auto response = httpd::http_get(system.hub(), 8080, "/");
        if (response.status == 200) successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  const auto report = system.stop();
  EXPECT_EQ(successes.load(std::memory_order_relaxed), 30);
  EXPECT_FALSE(report.attack_detected);
}

TEST(Stress, ComputeHeavyGuestBetweenSyscalls) {
  // Long CPU bursts between rendezvous (fib via mini-C would be slow; plain
  // C++ loop here) must not trip the arrival timeout as long as both
  // variants keep making progress.
  const auto system_owner = testing::build_system(std::chrono::milliseconds(2000));
  auto& system = *system_owner;
  LambdaGuest guest([](guest::GuestContext& ctx) {
    volatile std::uint64_t sink = 0;
    for (int burst = 0; burst < 5; ++burst) {
      for (std::uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i;
      (void)ctx.getpid();
    }
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
}

TEST(Stress, RepeatedRunsOnOneSystem) {
  const auto system_owner = stress_system({"uid-xor"});
  auto& system = *system_owner;
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system.fs().mkdir_p("/etc", root));
  ASSERT_TRUE(system.fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root));
  ASSERT_TRUE(system.fs().write_file("/etc/group", "root:x:0:\n", root));
  for (int round = 0; round < 10; ++round) {
    LambdaGuest guest([round](guest::GuestContext& ctx) {
      EXPECT_EQ(ctx.seteuid(ctx.uid_const(static_cast<os::uid_t>(100 + round))), os::Errno::kOk);
      ctx.exit(round);
    });
    const auto report = guest::run_nvariant(system, guest);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.exit_codes, (std::vector<int>{round, round}));
  }
}

}  // namespace
}  // namespace nv

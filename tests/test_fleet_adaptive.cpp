// Adaptive campaign defense: the AdaptivePolicyController's tighten/decay
// state machine in isolation, its wiring into VariantFleet (live policy
// installed in the correlator, telemetry counters, heightened-posture
// rotation), and the population-curves experiment built on top — all on
// ManualClock time, no sleeps.
#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "experiments/population_curves.h"
#include "fleet/adaptive.h"
#include "fleet/fleet.h"
#include "fleet/jobs.h"
#include "fleet/ops.h"
#include "fleet_test_harness.h"

namespace nv::fleet {
namespace {

using harness::diversity_part;
using harness::poison_job;
using harness::uid_spec;
using harness::wait_until;

using std::chrono::milliseconds;

CampaignAlert dummy_alert() {
  CampaignAlert alert;
  alert.id = 0;
  return alert;
}

CampaignPolicy baseline_policy(unsigned threshold, milliseconds window) {
  CampaignPolicy policy;
  policy.threshold = threshold;
  policy.window = window;
  return policy;
}

// --- AdaptivePolicyController ------------------------------------------------

TEST(AdaptivePolicy, TightensStepwiseTowardFloorAndCap) {
  ManualClock clock;
  AdaptivePolicyConfig config;
  config.enabled = true;
  config.threshold_floor = 2;
  config.threshold_step = 1;
  config.window_step = milliseconds(5000);
  config.window_cap = milliseconds(20'000);
  AdaptivePolicyController controller(config, baseline_policy(5, milliseconds(10'000)),
                                      clock.fn());
  EXPECT_FALSE(controller.tightened());

  auto first = controller.on_alert(dummy_alert());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->threshold, 4u);
  EXPECT_EQ(first->window, milliseconds(15'000));
  EXPECT_TRUE(first->rotate_fleet_on_alert);  // arm_rotation default
  EXPECT_TRUE(controller.tightened());

  auto second = controller.on_alert(dummy_alert());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->threshold, 3u);
  EXPECT_EQ(second->window, milliseconds(20'000));  // cap reached

  auto third = controller.on_alert(dummy_alert());
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->threshold, 2u);  // floor reached

  // Maximally tight: a further alert moves nothing (but still counts as
  // activity — the quiet timer restarts, covered below).
  EXPECT_FALSE(controller.on_alert(dummy_alert()).has_value());
  EXPECT_EQ(controller.times_tightened(), 3u);
  EXPECT_NE(controller.describe().find("threshold 2 (baseline 5)"), std::string::npos);
}

TEST(AdaptivePolicy, FloorAndCapAreClampedToTheBaseline) {
  // A floor ABOVE the baseline (or a cap below it) must not turn "tighten"
  // into "loosen": the knobs clamp to the baseline.
  ManualClock clock;
  AdaptivePolicyConfig config;
  config.threshold_floor = 10;
  config.window_cap = milliseconds(1);
  AdaptivePolicyController controller(config, baseline_policy(3, milliseconds(10'000)),
                                      clock.fn());
  auto tightened = controller.on_alert(dummy_alert());
  ASSERT_TRUE(tightened.has_value());  // rotation arming still moves the policy
  EXPECT_EQ(tightened->threshold, 3u);
  EXPECT_EQ(tightened->window, milliseconds(10'000));
  EXPECT_TRUE(tightened->rotate_fleet_on_alert);
}

TEST(AdaptivePolicy, DecaysOneStepPerElapsedQuietPeriod) {
  ManualClock clock;
  AdaptivePolicyConfig config;
  config.threshold_floor = 1;
  config.threshold_step = 1;
  config.window_step = milliseconds(5000);
  config.window_cap = milliseconds(60'000);
  config.quiet_period = milliseconds(10'000);
  AdaptivePolicyController controller(config, baseline_policy(3, milliseconds(10'000)),
                                      clock.fn());
  (void)controller.on_alert(dummy_alert());
  (void)controller.on_alert(dummy_alert());  // threshold 1, window 20 s

  // Not quiet long enough: nothing decays.
  clock.advance(milliseconds(9'999));
  EXPECT_FALSE(controller.poll().has_value());

  // Two full quiet periods elapsed: each poll takes ONE step back.
  clock.advance(milliseconds(10'002));
  auto step1 = controller.poll();
  ASSERT_TRUE(step1.has_value());
  EXPECT_EQ(step1->threshold, 2u);
  EXPECT_EQ(step1->window, milliseconds(15'000));
  auto step2 = controller.poll();
  ASSERT_TRUE(step2.has_value());
  EXPECT_EQ(step2->threshold, 3u);
  EXPECT_EQ(step2->window, milliseconds(10'000));
  EXPECT_FALSE(step2->rotate_fleet_on_alert);  // disarmed at baseline
  EXPECT_FALSE(controller.tightened());
  EXPECT_FALSE(controller.poll().has_value());  // at baseline: nothing to do
  EXPECT_EQ(controller.times_decayed(), 2u);
}

TEST(AdaptivePolicy, IncidentsAndAlertsDeferTheDecay) {
  ManualClock clock;
  AdaptivePolicyConfig config;
  config.quiet_period = milliseconds(10'000);
  AdaptivePolicyController controller(config, baseline_policy(3, milliseconds(10'000)),
                                      clock.fn());
  (void)controller.on_alert(dummy_alert());

  // A below-threshold quarantine (a JOIN on an open campaign, say) 8 s in
  // restarts the quiet clock: 8 s later the policy must still be tight.
  clock.advance(milliseconds(8'000));
  controller.on_incident();
  clock.advance(milliseconds(8'000));
  EXPECT_FALSE(controller.poll().has_value());
  EXPECT_TRUE(controller.tightened());

  clock.advance(milliseconds(2'001));  // now 10 s past the incident
  EXPECT_TRUE(controller.poll().has_value());
}

TEST(AdaptivePolicy, HeightenedPostureOwesPeriodicRotations) {
  ManualClock clock;
  AdaptivePolicyConfig config;
  config.quiet_period = milliseconds(60'000);
  config.tightened_rotation_interval = milliseconds(5'000);
  AdaptivePolicyController controller(config, baseline_policy(3, milliseconds(10'000)),
                                      clock.fn());
  EXPECT_FALSE(controller.rotation_due());  // baseline: no rotations owed

  (void)controller.on_alert(dummy_alert());
  EXPECT_FALSE(controller.rotation_due());  // interval starts at the tighten
  clock.advance(milliseconds(5'000));
  EXPECT_TRUE(controller.rotation_due());   // consuming...
  EXPECT_FALSE(controller.rotation_due());  // ...so asking twice owes once
  clock.advance(milliseconds(5'000));
  EXPECT_TRUE(controller.rotation_due());
}

// --- VariantFleet integration ------------------------------------------------

/// The acceptance scenario: with adaptation enabled, the uid-smash campaign
/// tightens the LIVE policy fleet-wide (threshold floor reached, window
/// widened, rotation armed => survivors re-diversified), and a quiet period
/// later the policy decays back to the configured baseline.
TEST(FleetAdaptive, UidSmashCampaignTightensThenQuietDecays) {
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 3;
  config.queue_capacity = 32;
  config.seed = 0xADA1;
  config.campaign.threshold = 3;
  config.campaign.window = milliseconds(60'000);
  config.campaign.rotate_fleet_on_alert = false;  // baseline posture: observe only
  config.adaptive.enabled = true;
  config.adaptive.threshold_floor = 1;
  config.adaptive.threshold_step = 2;  // one alert reaches the floor
  config.adaptive.window_step = milliseconds(30'000);
  config.adaptive.window_cap = milliseconds(120'000);
  config.adaptive.quiet_period = milliseconds(10'000);
  config.clock = clock.fn();
  VariantFleet fleet(config);

  std::set<std::string> initial;
  for (const auto& fp : fleet.live_fingerprints()) initial.insert(diversity_part(fp));

  // The §4 uid-smash fired at three differently-diversified httpd sessions:
  // three quarantines, one signature, ONE campaign alert.
  httpd::ServerConfig server;
  server.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
  server.max_requests = 10;
  for (int i = 0; i < 3; ++i) {
    const JobOutcome outcome =
        fleet.submit(jobs::httpd_request_stream(server, jobs::uid_smash_attack())).get();
    EXPECT_TRUE(outcome.report.attack_detected);
    EXPECT_TRUE(outcome.session_quarantined);
  }
  ASSERT_EQ(fleet.campaign_alerts().size(), 1u);

  // TIGHTENED, fleet-wide and live: threshold at the floor, window widened,
  // rotation armed — and because arming applies to the alert that tightened,
  // the two surviving lanes re-diversify even though the baseline never
  // rotates.
  const CampaignPolicy tightened = fleet.campaign_policy();
  EXPECT_EQ(tightened.threshold, 1u);
  EXPECT_EQ(tightened.window, milliseconds(90'000));
  EXPECT_TRUE(tightened.rotate_fleet_on_alert);
  ASSERT_NE(fleet.adaptive(), nullptr);
  EXPECT_TRUE(fleet.adaptive()->tightened());
  ASSERT_TRUE(
      wait_until([&] { return fleet.telemetry().snapshot().sessions_rotated == 2u; }));
  for (const auto& fp : fleet.live_fingerprints()) {
    EXPECT_FALSE(initial.contains(diversity_part(fp))) << fp;
  }

  // The tightening is LIVE in the correlator: with the threshold at the
  // floor of 1, a single quarantine of a brand-new signature is a campaign
  // on its own — under the baseline threshold of 3 it would not even warn.
  EXPECT_TRUE(fleet.submit(poison_job("second wave")).get().session_quarantined);
  EXPECT_EQ(fleet.campaign_alerts().size(), 2u);

  // QUIET: the posture is two decay steps from baseline (threshold 1 -> 3 is
  // one step; the cap-widened window needs a second), so wait out two quiet
  // periods. A benign job's completion triggers the first poll; the
  // operator-style explicit poll takes the second step.
  clock.advance(milliseconds(20'002));
  EXPECT_TRUE(fleet.submit(jobs::uid_churn(3)).get().ok());
  (void)fleet.poll_adaptive();
  const CampaignPolicy decayed = fleet.campaign_policy();
  EXPECT_EQ(decayed.threshold, config.campaign.threshold);
  EXPECT_EQ(decayed.window, config.campaign.window);
  EXPECT_FALSE(decayed.rotate_fleet_on_alert);
  EXPECT_FALSE(fleet.adaptive()->tightened());

  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.policy_tightened, 2u);  // uid-smash alert + second-wave alert
  EXPECT_GE(snap.policy_decayed, 1u);
  EXPECT_EQ(snap.campaign_alerts, 2u);
}

TEST(FleetAdaptive, IdleCampaignExpiryAndDecayInteract) {
  // Satellite regression: an idle fleet must close its campaigns
  // (open_campaigns prunes) AND decay its policy (poll_adaptive), without a
  // single further quarantine.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0xADA2;
  config.campaign.threshold = 2;
  config.campaign.window = milliseconds(5'000);
  config.adaptive.enabled = true;
  config.adaptive.threshold_floor = 1;
  config.adaptive.window_step = milliseconds(5'000);
  config.adaptive.window_cap = milliseconds(30'000);
  config.adaptive.quiet_period = milliseconds(20'000);
  config.clock = clock.fn();
  VariantFleet fleet(config);

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(fleet.submit(poison_job("idle probe")).get().session_quarantined);
  }
  ASSERT_EQ(fleet.open_campaigns().size(), 1u);
  EXPECT_TRUE(fleet.adaptive()->tightened());

  // The widened window (10 s) outlives the baseline window: at 7 s the
  // campaign is still open BECAUSE the policy is tight.
  clock.advance(milliseconds(7'000));
  EXPECT_EQ(fleet.open_campaigns().size(), 1u);

  // Past the widened window the campaign closes on the idle fleet; past the
  // quiet period the policy decays back — and with the baseline window
  // restored, the already-closed campaign stays closed.
  clock.advance(milliseconds(4'000));  // t = 11 s > 10 s widened window
  EXPECT_TRUE(fleet.open_campaigns().empty());
  EXPECT_TRUE(fleet.adaptive()->tightened());  // decay needs the quiet period

  clock.advance(milliseconds(10'000));  // t = 21 s > 20 s quiet period
  (void)fleet.poll_adaptive();          // idle fleet: the operator's tick
  EXPECT_FALSE(fleet.adaptive()->tightened());
  EXPECT_EQ(fleet.campaign_policy().threshold, 2u);
  EXPECT_EQ(fleet.telemetry().snapshot().policy_decayed, 1u);
  EXPECT_EQ(fleet.campaign_alerts().size(), 1u);  // history intact
}

TEST(FleetAdaptive, TightenedPostureRotatesPeriodicallyViaPoll) {
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0xADA3;
  config.campaign.threshold = 2;
  config.campaign.window = milliseconds(60'000);
  config.adaptive.enabled = true;
  config.adaptive.arm_rotation = false;  // isolate the periodic lever
  config.adaptive.quiet_period = milliseconds(60'000);
  config.adaptive.tightened_rotation_interval = milliseconds(1'000);
  config.clock = clock.fn();
  VariantFleet fleet(config);

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(fleet.submit(poison_job("posture probe")).get().session_quarantined);
  }
  ASSERT_TRUE(fleet.adaptive()->tightened());
  EXPECT_EQ(fleet.telemetry().snapshot().sessions_rotated, 0u);

  clock.advance(milliseconds(1'000));
  EXPECT_EQ(fleet.poll_adaptive(), 2u);  // one rotation owed, both lanes flagged
  ASSERT_TRUE(
      wait_until([&] { return fleet.telemetry().snapshot().sessions_rotated == 2u; }));
  EXPECT_EQ(fleet.poll_adaptive(), 0u);  // nothing further owed yet
}

// --- Population-curves experiment -------------------------------------------

TEST(PopulationCurves, FasterRediversificationRaisesAttackerCost) {
  experiments::PopulationExperimentConfig config;
  config.pool_size = 2;
  config.seed = 0xE59;
  config.ticks = 120;
  config.tick = milliseconds(10);
  // The attacker keyspace is no longer a model parameter: it is the
  // registry-reported entropy of the probed variation (the default probes
  // address-partitioning's real 16-stride space => S = 16).
  config.timeline_stride = 10;

  config.rediversify_interval = milliseconds(0);
  const auto never = experiments::run_population_experiment(config);
  config.rediversify_interval = milliseconds(400);
  const auto slow = experiments::run_population_experiment(config);
  config.rediversify_interval = milliseconds(100);
  const auto fast = experiments::run_population_experiment(config);

  // Probes really cost one quarantine each.
  EXPECT_EQ(never.quarantines, never.probes - never.silent_compromises);
  EXPECT_GT(never.compromised_lane_ticks, 0u);
  EXPECT_GT(slow.rotations, 0u);
  EXPECT_GT(fast.rotations, slow.rotations);

  // The headline claim, in miniature: cost rises with the rate.
  EXPECT_LT(never.attacker_cost, slow.attacker_cost);
  EXPECT_LT(slow.attacker_cost, fast.attacker_cost);

  // Deterministic: the same config replays to the same ledger.
  config.rediversify_interval = milliseconds(0);
  const auto replay = experiments::run_population_experiment(config);
  EXPECT_EQ(replay.probes, never.probes);
  EXPECT_EQ(replay.compromised_lane_ticks, never.compromised_lane_ticks);
  EXPECT_EQ(replay.quarantines, never.quarantines);
}

}  // namespace
}  // namespace nv::fleet

#include <gtest/gtest.h>

#include "sim/resource.h"
#include "sim/simulation.h"

namespace nv::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_to_completion();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(10, [] {});
  sim.run_to_completion();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulation, RunUntilAdvancesClockToDeadline) {
  Simulation sim;
  sim.schedule_at(100, [] {});
  sim.run_until(50);
  EXPECT_EQ(sim.now(), 50u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(200);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(FifoStation, SingleServerSerializesJobs) {
  Simulation sim;
  FifoStation cpu(sim, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(10, [&] { completions.push_back(sim.now()); });
  }
  sim.run_to_completion();
  EXPECT_EQ(completions, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(cpu.completed(), 3u);
}

TEST(FifoStation, TwoServersRunInParallel) {
  Simulation sim;
  FifoStation cpu(sim, 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(10, [&] { completions.push_back(sim.now()); });
  }
  sim.run_to_completion();
  EXPECT_EQ(completions, (std::vector<SimTime>{10, 10, 20, 20}));
}

TEST(FifoStation, WaitTimesTracked) {
  Simulation sim;
  FifoStation cpu(sim, 1);
  cpu.submit(from_ms(1.0), [] {});
  cpu.submit(from_ms(1.0), [] {});
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(cpu.wait_stats().min(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.wait_stats().max(), 1.0);
}

TEST(FifoStation, UtilizationReflectsBusyTime) {
  Simulation sim;
  FifoStation cpu(sim, 1);
  cpu.submit(100, [] {});
  sim.schedule_at(200, [] {});  // extend the horizon to 200
  sim.run_to_completion();
  EXPECT_NEAR(cpu.utilization(), 0.5, 1e-9);
}

TEST(FifoStation, ZeroServersRejected) {
  Simulation sim;
  EXPECT_THROW(FifoStation(sim, 0), std::invalid_argument);
}

TEST(SimTimeConversions, RoundTrip) {
  EXPECT_EQ(from_ms(5.0), 5 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_ms(from_ms(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
}

}  // namespace
}  // namespace nv::sim

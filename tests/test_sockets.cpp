#include <gtest/gtest.h>

#include <thread>

#include "vkernel/sockets.h"

namespace nv::vkernel {
namespace {

TEST(SocketHub, BindAndDoubleBind) {
  SocketHub hub;
  EXPECT_EQ(hub.bind(80), os::Errno::kOk);
  EXPECT_EQ(hub.bind(80), os::Errno::kEADDRINUSE);
  EXPECT_TRUE(hub.is_bound(80));
  hub.unbind(80);
  EXPECT_FALSE(hub.is_bound(80));
}

TEST(SocketHub, ConnectToUnboundPortRefused) {
  SocketHub hub;
  auto conn = hub.connect(9999);
  ASSERT_FALSE(conn.has_value());
  EXPECT_EQ(conn.error(), os::Errno::kECONNREFUSED);
}

TEST(SocketHub, AcceptDeliversPendingConnection) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  auto client = hub.connect(80);
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(hub.backlog(80), 1u);
  auto server = hub.accept(80);
  ASSERT_TRUE(server.has_value());
  EXPECT_EQ(hub.backlog(80), 0u);
}

TEST(SocketHub, DataFlowsBothWays) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  auto client = hub.connect(80);
  auto server = hub.accept(80);
  ASSERT_TRUE(client.has_value() && server.has_value());

  ASSERT_TRUE(client->send("ping").has_value());
  EXPECT_EQ(server->recv(100).value(), "ping");
  ASSERT_TRUE(server->send("pong").has_value());
  EXPECT_EQ(client->recv(100).value(), "pong");
}

TEST(SocketHub, RecvBlocksUntilDataArrives) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  auto client = hub.connect(80);
  auto server = hub.accept(80);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(client->send("late").has_value());
  });
  EXPECT_EQ(server->recv(100).value(), "late");
  sender.join();
}

TEST(SocketHub, CloseSignalsEofToPeer) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  auto client = hub.connect(80);
  auto server = hub.accept(80);
  client->close();
  EXPECT_EQ(server->recv(100).value(), "");  // EOF
  auto send = server->send("x");
  ASSERT_FALSE(send.has_value());
  EXPECT_EQ(send.error(), os::Errno::kEPIPE);
}

TEST(SocketHub, RecvUntilDelimiterKeepsRemainder) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  auto client = hub.connect(80);
  auto server = hub.accept(80);
  ASSERT_TRUE(client->send("GET / HTTP/1.0\r\n\r\nextra").has_value());
  EXPECT_EQ(server->recv_until("\r\n\r\n").value(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_EQ(server->recv(100).value(), "extra");
}

TEST(SocketHub, ShutdownWakesBlockedAccept) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  std::thread interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    hub.shutdown();
  });
  auto conn = hub.accept(80);
  ASSERT_FALSE(conn.has_value());
  EXPECT_EQ(conn.error(), os::Errno::kEINTR);
  interrupter.join();
}

TEST(SocketHub, ShutdownWakesBlockedRecv) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  auto client = hub.connect(80);
  auto server = hub.accept(80);
  std::thread interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    hub.shutdown();
  });
  auto data = server->recv(100);
  ASSERT_FALSE(data.has_value());
  EXPECT_EQ(data.error(), os::Errno::kEINTR);
  interrupter.join();
}

TEST(SocketHub, ResetAllowsReuse) {
  SocketHub hub;
  hub.shutdown();
  EXPECT_TRUE(hub.is_shutdown());
  hub.reset();
  EXPECT_FALSE(hub.is_shutdown());
  EXPECT_EQ(hub.bind(80), os::Errno::kOk);
}

TEST(SocketHub, MultipleClientsQueueInOrder) {
  SocketHub hub;
  ASSERT_EQ(hub.bind(80), os::Errno::kOk);
  auto c1 = hub.connect(80);
  auto c2 = hub.connect(80);
  ASSERT_TRUE(c1.has_value() && c2.has_value());
  ASSERT_TRUE(c1->send("first").has_value());
  ASSERT_TRUE(c2->send("second").has_value());
  EXPECT_EQ(hub.accept(80)->recv(100).value(), "first");
  EXPECT_EQ(hub.accept(80)->recv(100).value(), "second");
}

}  // namespace
}  // namespace nv::vkernel

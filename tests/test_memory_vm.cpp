// Simulated address space faults and the tagged-bytecode VM.
#include <gtest/gtest.h>

#include "vkernel/kernel.h"
#include "vkernel/memory.h"
#include "vkernel/vm.h"

namespace nv::vkernel {
namespace {

TEST(AddressSpace, LoadStoreRoundTrip) {
  AddressSpace mem;
  mem.map(0x1000, 4096);
  mem.store_u8(0x1000, 0xAB);
  EXPECT_EQ(mem.load_u8(0x1000), 0xAB);
  mem.store_u32(0x1010, 0xDEADBEEF);
  EXPECT_EQ(mem.load_u32(0x1010), 0xDEADBEEFu);
  mem.store_u64(0x1020, 0x0123456789ABCDEFULL);
  EXPECT_EQ(mem.load_u64(0x1020), 0x0123456789ABCDEFULL);
}

TEST(AddressSpace, LittleEndianLayout) {
  AddressSpace mem;
  mem.map(0x1000, 4096);
  mem.store_u32(0x1000, 0x04030201);
  EXPECT_EQ(mem.load_u8(0x1000), 0x01);
  EXPECT_EQ(mem.load_u8(0x1003), 0x04);
}

TEST(AddressSpace, UnmappedAccessFaults) {
  AddressSpace mem;
  EXPECT_THROW((void)mem.load_u8(0x5000), MemoryFault);
  EXPECT_THROW(mem.store_u32(0x5000, 1), MemoryFault);
  mem.map(0x5000, 8);
  EXPECT_NO_THROW(mem.store_u32(0x5000, 1));
}

TEST(AddressSpace, FaultCarriesAddress) {
  AddressSpace mem;
  try {
    (void)mem.load_u8(0xDEAD0000);
    FAIL() << "expected fault";
  } catch (const MemoryFault& fault) {
    EXPECT_EQ(fault.address, 0xDEAD0000u);
  }
}

TEST(AddressSpace, CrossPageAccessNeedsBothPages) {
  AddressSpace mem;
  mem.map(0x1000, 4096);  // one page: [0x1000, 0x2000)
  EXPECT_THROW((void)mem.load_u32(0x1FFE), MemoryFault);
  mem.map(0x2000, 1);
  EXPECT_NO_THROW((void)mem.load_u32(0x1FFE));
}

TEST(AddressSpace, AllocBumpsAndMaps) {
  AddressSpace mem;
  mem.set_alloc_base(0x10000);
  const auto a = mem.alloc(100);
  const auto b = mem.alloc(100);
  EXPECT_EQ(a, 0x10000u);
  EXPECT_GE(b, a + 100);
  EXPECT_TRUE(mem.is_mapped(a, 100));
  EXPECT_TRUE(mem.is_mapped(b, 100));
}

TEST(AddressSpace, AllocAlignment) {
  AddressSpace mem;
  mem.set_alloc_base(0x10001);
  EXPECT_EQ(mem.alloc(8, 16) % 16, 0u);
}

TEST(AddressSpace, StringHelpers) {
  AddressSpace mem;
  mem.map(0x1000, 4096);
  mem.store_string(0x1000, "hello");
  EXPECT_EQ(mem.load_string(0x1000, 100), "hello");
  EXPECT_EQ(mem.load_string(0x1000, 3), "hel");
}

struct VmFixture : ::testing::Test {
  vfs::FileSystem fs;
  SocketHub hub;
  KernelContext ctx{fs, hub};
  PlainKernel kernel{ctx, "vm-test"};

  AddressSpace& mem() { return kernel.process().memory(); }
};

TEST_F(VmFixture, ArithmeticAndEmit) {
  VmProgram prog;
  prog.load_imm(0, 40).load_imm(1, 2).add(0, 1).emit().halt();
  const auto image = prog.assemble(0x5A);
  mem().map(0x4000, image.size());
  mem().store_bytes(0x4000, image);
  const auto result = vm_run(mem(), 0x4000, 0x5A, kernel);
  ASSERT_TRUE(result.halted);
  EXPECT_EQ(result.output, (std::vector<std::uint32_t>{42}));
}

TEST_F(VmFixture, XorAndMov) {
  VmProgram prog;
  prog.load_imm(0, 0xFF).load_imm(1, 0x0F).xor_(0, 1).mov(2, 0).emit().halt();
  const auto image = prog.assemble(0x01);
  mem().map(0x4000, image.size());
  mem().store_bytes(0x4000, image);
  const auto result = vm_run(mem(), 0x4000, 0x01, kernel);
  EXPECT_EQ(result.regs[2], 0xF0u);
}

TEST_F(VmFixture, WrongTagFaultsImmediately) {
  VmProgram prog;
  prog.load_imm(0, 1).halt();
  const auto image = prog.assemble(0xA0);
  mem().map(0x4000, image.size());
  mem().store_bytes(0x4000, image);
  try {
    (void)vm_run(mem(), 0x4000, 0xA1, kernel);
    FAIL() << "expected TagFault";
  } catch (const TagFault& fault) {
    EXPECT_EQ(fault.expected, 0xA1);
    EXPECT_EQ(fault.found, 0xA0);
    EXPECT_EQ(fault.address, 0x4000u);
  }
}

TEST_F(VmFixture, SyscallOpcodesReachKernel) {
  VmProgram prog;
  // setuid(1000) then geteuid -> emit.
  prog.load_imm(0, 1000).sys_setuid().sys_geteuid().emit().halt();
  const auto image = prog.assemble(0x10);
  mem().map(0x4000, image.size());
  mem().store_bytes(0x4000, image);
  const auto result = vm_run(mem(), 0x4000, 0x10, kernel);
  EXPECT_EQ(result.output, (std::vector<std::uint32_t>{1000}));
  EXPECT_EQ(kernel.process().creds().euid, 1000u);
}

TEST_F(VmFixture, LoopWithJnz) {
  VmProgram prog;
  // r0 = 3; loop: r0 += (-1); jnz r0 -> loop; emit r1 (counts iterations)
  prog.load_imm(0, 3)
      .load_imm(2, 0xFFFFFFFF)  // -1
      .load_imm(1, 0)
      .load_imm(3, 1)
      .add(0, 2)   // index 4: r0 -= 1
      .add(1, 3)   // r1 += 1
      .jnz(0, -2)  // back to the add at relative -2
      .emit()
      .halt();
  const auto image = prog.assemble(0x22);
  mem().map(0x4000, image.size());
  mem().store_bytes(0x4000, image);
  auto result = vm_run(mem(), 0x4000, 0x22, kernel);
  ASSERT_TRUE(result.halted);
  EXPECT_EQ(result.regs[1], 3u);
}

TEST_F(VmFixture, StepBudgetStopsRunawayCode) {
  VmProgram prog;
  prog.load_imm(0, 1).jnz(0, 0);  // jump-to-self forever
  const auto image = prog.assemble(0x33);
  mem().map(0x4000, image.size());
  mem().store_bytes(0x4000, image);
  const auto result = vm_run(mem(), 0x4000, 0x33, kernel, 50);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.steps, 50u);
}

TEST_F(VmFixture, ExecutingUnmappedMemoryFaults) {
  EXPECT_THROW((void)vm_run(mem(), 0x9999000, 0x00, kernel), MemoryFault);
}

TEST(VmInstruction, EncodedSizes) {
  EXPECT_EQ(VmInstruction::encoded_size(Opcode::kLoadImm), 6u);
  EXPECT_EQ(VmInstruction::encoded_size(Opcode::kAdd), 3u);
  EXPECT_EQ(VmInstruction::encoded_size(Opcode::kHalt), 1u);
}

TEST(VmProgram, AssembleTagsEveryInstruction) {
  VmProgram prog;
  prog.load_imm(0, 7).emit().halt();
  const auto image = prog.assemble(0xEE);
  // tag + loadimm(6) + tag + emit(1) + tag + halt(1)
  ASSERT_EQ(image.size(), 1u + 6 + 1 + 1 + 1 + 1);
  EXPECT_EQ(image[0], 0xEE);
  EXPECT_EQ(image[7], 0xEE);
  EXPECT_EQ(image[9], 0xEE);
}

}  // namespace
}  // namespace nv::vkernel

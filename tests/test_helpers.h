// Shared test scaffolding.
#ifndef NV_TESTS_TEST_HELPERS_H
#define NV_TESTS_TEST_HELPERS_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "core/nvariant_system.h"
#include "guest/guest_program.h"
#include "variants/registry.h"

namespace nv::testing {

/// Guest program defined inline from a lambda. The lambda runs once per
/// variant, concurrently — keep all state in locals or simulated memory.
class LambdaGuest final : public guest::GuestProgram {
 public:
  using Fn = std::function<void(guest::GuestContext&)>;
  explicit LambdaGuest(Fn fn) : fn_(std::move(fn)) {}
  void run(guest::GuestContext& ctx) override { fn_(ctx); }
  [[nodiscard]] std::string_view name() const override { return "lambda-guest"; }

 private:
  Fn fn_;
};

/// Builder shorthand for tests: N variants, rendezvous timeout, variations
/// named from the builtin registry, extra unshared paths.
inline std::unique_ptr<core::NVariantSystem> build_system(
    std::chrono::milliseconds timeout, unsigned n_variants = 2,
    std::initializer_list<std::string_view> variation_names = {},
    std::initializer_list<std::string> unshared = {}) {
  core::NVariantSystem::Builder builder;
  builder.n_variants(n_variants).rendezvous_timeout(timeout);
  for (const auto name : variation_names) {
    builder.variation(variants::make_builtin(name));
  }
  for (const auto& path : unshared) builder.unshared(path);
  return builder.build();
}

/// Yield-spin (never sleep) until a server guest binds `port`. Sleeping 1 ms
/// per poll serializes badly under sanitizers; yielding keeps the wait as
/// short as the scheduler allows. The timeout only bounds a FAILING test.
template <typename Hub>
[[nodiscard]] inline bool wait_for_bind(Hub& hub, std::uint16_t port,
                                        std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  while (!hub.is_bound(port)) {
    if (std::chrono::steady_clock::now() >= give_up) return false;
    std::this_thread::yield();
  }
  return true;
}

}  // namespace nv::testing

#endif  // NV_TESTS_TEST_HELPERS_H

// Shared test scaffolding.
#ifndef NV_TESTS_TEST_HELPERS_H
#define NV_TESTS_TEST_HELPERS_H

#include <functional>

#include "guest/guest_program.h"

namespace nv::testing {

/// Guest program defined inline from a lambda. The lambda runs once per
/// variant, concurrently — keep all state in locals or simulated memory.
class LambdaGuest final : public guest::GuestProgram {
 public:
  using Fn = std::function<void(guest::GuestContext&)>;
  explicit LambdaGuest(Fn fn) : fn_(std::move(fn)) {}
  void run(guest::GuestContext& ctx) override { fn_(ctx); }
  [[nodiscard]] std::string_view name() const override { return "lambda-guest"; }

 private:
  Fn fn_;
};

}  // namespace nv::testing

#endif  // NV_TESTS_TEST_HELPERS_H

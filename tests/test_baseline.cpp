// Secret-based randomization baselines + output-voting comparators.
#include <gtest/gtest.h>

#include "baseline/output_voting.h"
#include "baseline/secret_defense.h"

namespace nv::baseline {
namespace {

TEST(SecretRandomization, KeyFitsEntropy) {
  for (unsigned bits : {4u, 8u, 16u, 24u}) {
    SecretRandomization defense(bits, 99);
    SecretRandomization::ProbeStats stats = defense.brute_force(1ULL << bits);
    EXPECT_TRUE(stats.recovered);
    EXPECT_LE(stats.probes, 1ULL << bits);
  }
}

TEST(SecretRandomization, BruteForceRespectsProbeBudget) {
  SecretRandomization defense(24, 7);
  const auto stats = defense.brute_force(10);
  EXPECT_EQ(stats.probes, 10u);
  // With a 24-bit key the chance of recovery in 10 probes is negligible; the
  // seed used here does not land in the first 10 guesses.
  EXPECT_FALSE(stats.recovered);
}

TEST(SecretRandomization, IncrementalBeatsBruteForceExponentially) {
  // The Sovarel/Shacham observation: a probe oracle per chunk collapses the
  // key space from 2^k to (k/c) * 2^c.
  SecretRandomization defense(24, 123);
  const auto incremental = defense.incremental(8, 1ULL << 24);
  ASSERT_TRUE(incremental.recovered);
  EXPECT_LE(incremental.probes, 3 * 256u);
  const auto brute = defense.brute_force(1ULL << 24);
  ASSERT_TRUE(brute.recovered);
  EXPECT_GT(brute.probes, incremental.probes);
}

TEST(SecretRandomization, ExpectedProbeFormulas) {
  EXPECT_DOUBLE_EQ(expected_brute_force_probes(16), 32768.0);
  EXPECT_DOUBLE_EQ(expected_incremental_probes(16, 8), 2.0 * 128.0);
  EXPECT_DOUBLE_EQ(expected_incremental_probes(24, 8), 3.0 * 128.0);
}

TEST(SecretRandomization, AverageBruteForceCostMatchesTheory) {
  // Across many keys, mean probes ~= 2^(bits-1).
  double total = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    SecretRandomization defense(12, 1000 + static_cast<std::uint64_t>(trial));
    const auto stats = defense.brute_force(1ULL << 12);
    EXPECT_TRUE(stats.recovered);
    total += static_cast<double>(stats.probes);
  }
  EXPECT_NEAR(total / kTrials, expected_brute_force_probes(12), 300.0);
}

TEST(NVariantComparison, NoProbeCountEvadesDisjointedness) {
  EXPECT_EQ(nvariant_evasion_probability(1), 0.0);
  EXPECT_EQ(nvariant_evasion_probability(1ULL << 40), 0.0);
}

TEST(OutputVoting, DetectsOnlyVisibleDifferences) {
  const OutputVotingMonitor hacqit(VotingMode::kStatusCodes);
  const OutputVotingMonitor totel(VotingMode::kFullResponse);

  const ServedOutput ok{200, "<html>page</html>"};
  const ServedOutput defaced{200, "<html>pwned</html>"};
  const ServedOutput error{500, "oops"};

  // A UID exploit that leaves pages unchanged: invisible to both (§6 claim).
  EXPECT_FALSE(hacqit.detects(ok, ok));
  EXPECT_FALSE(totel.detects(ok, ok));

  // Defacement: visible to full-response voting, invisible to status voting.
  EXPECT_FALSE(hacqit.detects(ok, defaced));
  EXPECT_TRUE(totel.detects(ok, defaced));

  // Crash/error divergence: visible to both.
  EXPECT_TRUE(hacqit.detects(ok, error));
  EXPECT_TRUE(totel.detects(ok, error));
}

}  // namespace
}  // namespace nv::baseline

// Linux setuid-family semantics — the UID variation's target interpreter.
#include <gtest/gtest.h>

#include "vkernel/credentials.h"

namespace nv::vkernel {
namespace {

using os::Credentials;
using os::Errno;

TEST(Setuid, RootSetsAllThreeIds) {
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_setuid(c, 1000), Errno::kOk);
  EXPECT_EQ(c.ruid, 1000u);
  EXPECT_EQ(c.euid, 1000u);
  EXPECT_EQ(c.suid, 1000u);
}

TEST(Setuid, AfterFullDropEscalationImpossible) {
  Credentials c = Credentials::root();
  ASSERT_EQ(sys_setuid(c, 1000), Errno::kOk);
  EXPECT_EQ(sys_setuid(c, 0), Errno::kEPERM);
  EXPECT_EQ(sys_seteuid(c, 0), Errno::kEPERM);
}

TEST(Setuid, UnprivilegedMaySetEuidToRealOrSaved) {
  Credentials c = Credentials::user(1000, 1000);
  c.suid = 2000;
  EXPECT_EQ(sys_setuid(c, 2000), Errno::kOk);  // saved uid
  EXPECT_EQ(c.euid, 2000u);
  EXPECT_EQ(c.ruid, 1000u);  // real unchanged for unprivileged setuid
  EXPECT_EQ(sys_setuid(c, 3000), Errno::kEPERM);
}

TEST(Setuid, InvalidSentinelRejected) {
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_setuid(c, os::kInvalidUid), Errno::kEINVAL);
}

TEST(Seteuid, TogglesWithSavedRoot) {
  // The server pattern: drop effective, keep saved root, escalate later.
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_seteuid(c, 33), Errno::kOk);
  EXPECT_EQ(c.euid, 33u);
  EXPECT_EQ(c.suid, 0u);
  EXPECT_EQ(sys_seteuid(c, 0), Errno::kOk);  // allowed: suid == 0
  EXPECT_EQ(c.euid, 0u);
}

TEST(Seteuid, UnprivilegedLimitedToOwnIds) {
  Credentials c = Credentials::user(1000, 1000);
  EXPECT_EQ(sys_seteuid(c, 1000), Errno::kOk);
  EXPECT_EQ(sys_seteuid(c, 0), Errno::kEPERM);
}

TEST(Setreuid, MinusOneLeavesFieldUnchanged) {
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_setreuid(c, os::kInvalidUid, 500), Errno::kOk);
  EXPECT_EQ(c.ruid, 0u);
  EXPECT_EQ(c.euid, 500u);
}

TEST(Setreuid, SettingRealUpdatesSaved) {
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_setreuid(c, 100, 200), Errno::kOk);
  EXPECT_EQ(c.suid, 200u);  // saved becomes new effective
}

TEST(Setreuid, UnprivilegedRules) {
  Credentials c = Credentials::user(1000, 1000);
  c.suid = 0;
  EXPECT_EQ(sys_setreuid(c, os::kInvalidUid, 0), Errno::kOk);  // euid <- suid
  EXPECT_EQ(c.euid, 0u);
  Credentials d = Credentials::user(1000, 1000);
  EXPECT_EQ(sys_setreuid(d, 555, os::kInvalidUid), Errno::kEPERM);
}

TEST(Setresuid, PartialUpdatesWithSentinels) {
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_setresuid(c, 1, os::kInvalidUid, 3), Errno::kOk);
  EXPECT_EQ(c.ruid, 1u);
  EXPECT_EQ(c.euid, 0u);
  EXPECT_EQ(c.suid, 3u);
}

TEST(Setresuid, UnprivilegedMayPermuteOwnIds) {
  Credentials c = Credentials::user(1000, 1000);
  c.suid = 0;
  EXPECT_EQ(sys_setresuid(c, 1000, 0, 1000), Errno::kOk);
  EXPECT_EQ(c.euid, 0u);
  // Regaining euid 0 re-privileges the process (Linux: CAP_SETUID follows
  // the effective UID in our model), so arbitrary changes work again.
  EXPECT_EQ(sys_setresuid(c, 42, 42, 42), Errno::kOk);
  // Now fully unprivileged with no root ID anywhere: arbitrary IDs refused.
  EXPECT_EQ(sys_setresuid(c, 7, os::kInvalidUid, os::kInvalidUid), Errno::kEPERM);
}

TEST(Setgid, MirrorsSetuidRules) {
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_setgid(c, 33), Errno::kOk);
  EXPECT_EQ(c.rgid, 33u);
  EXPECT_EQ(c.egid, 33u);
  EXPECT_EQ(c.sgid, 33u);
  // c is still euid 0, so further setgid is allowed; drop euid first.
  ASSERT_EQ(sys_seteuid(c, 1000), Errno::kOk);
  EXPECT_EQ(sys_setgid(c, 99), Errno::kEPERM);
  EXPECT_EQ(sys_setgid(c, 33), Errno::kOk);
}

TEST(Setegid, UnprivilegedLimitedToOwnGids) {
  Credentials c = Credentials::user(1000, 1000);
  c.sgid = 50;
  EXPECT_EQ(sys_setegid(c, 50), Errno::kOk);
  EXPECT_EQ(sys_setegid(c, 51), Errno::kEPERM);
}

TEST(Setgroups, RootOnly) {
  Credentials c = Credentials::root();
  EXPECT_EQ(sys_setgroups(c, {1, 2, 3}), Errno::kOk);
  EXPECT_EQ(c.groups, (std::vector<os::gid_t>{1, 2, 3}));
  Credentials d = Credentials::user(1000, 1000);
  EXPECT_EQ(sys_setgroups(d, {1}), Errno::kEPERM);
}

TEST(Credentials, GroupMembershipChecks) {
  Credentials c = Credentials::user(1000, 100);
  c.groups = {200, 300};
  EXPECT_TRUE(c.in_group(100));
  EXPECT_TRUE(c.in_group(300));
  EXPECT_FALSE(c.in_group(400));
}

TEST(Credentials, SuperuserIsEffectiveUidZero) {
  Credentials c = Credentials::user(1000, 1000);
  EXPECT_FALSE(c.is_superuser());
  c.euid = 0;
  EXPECT_TRUE(c.is_superuser());
}

}  // namespace
}  // namespace nv::vkernel

// The §2 interpreters model: normal equivalence on trusted flows, detection
// on injected flows, and partial-overwrite analysis including the paper's
// documented high-bit weakness.
#include <gtest/gtest.h>

#include "core/interpreter_model.h"
#include "util/rng.h"
#include "variants/uid_variation.h"

namespace nv::core {
namespace {

TwoVariantDataFlow<os::uid_t> paper_flow() {
  return TwoVariantDataFlow<os::uid_t>(std::make_shared<Identity<os::uid_t>>(),
                                       std::make_shared<XorMask>(0x7FFFFFFF));
}

TEST(InterpreterModel, TrustedFlowsNeverDiverge) {
  const auto flow = paper_flow();
  for (os::uid_t u : uid_property_samples(5000)) {
    const auto outcome = flow.trusted_flow(u);
    EXPECT_FALSE(outcome.diverged()) << "uid " << u;
    EXPECT_EQ(outcome.canonical0, u);
    EXPECT_EQ(outcome.canonical1, u);
  }
}

TEST(InterpreterModel, InjectedFlowsAlwaysDiverge) {
  const auto flow = paper_flow();
  for (os::uid_t x : uid_property_samples(5000)) {
    EXPECT_TRUE(flow.injected_flow(x).diverged()) << "injected " << x;
  }
}

TEST(InterpreterModel, InjectedRootIsCaught) {
  const auto flow = paper_flow();
  const auto outcome = flow.injected_flow(0);  // attacker injects "root"
  EXPECT_TRUE(outcome.diverged());
  EXPECT_EQ(outcome.canonical0, 0u);            // variant 0 would become root
  EXPECT_EQ(outcome.canonical1, 0x7FFFFFFFu);   // variant 1 becomes nonsense
}

TEST(InterpreterModel, FullWordOverwriteDetected) {
  const Identity<os::uid_t> r0;
  const XorMask r1(0x7FFFFFFF);
  const auto outcome = partial_overwrite(r0, r1, /*original=*/1000, /*value=*/0,
                                         /*mask=*/0xFFFFFFFF);
  EXPECT_TRUE(outcome.diverged());
}

TEST(InterpreterModel, EveryByteLevelOverwriteDetected) {
  // The algebra: after a masked overwrite with the SAME bits in both
  // variants, canonical0 XOR canonical1 = reexpression_mask AND overwrite_mask.
  // So ANY overwrite touching reexpressed bits diverges — even one that
  // happens to rewrite variant 0's representation with its existing bits —
  // and only masks confined to the unflipped high bit escape. Byte-level
  // attacks (the realistic remote threat, §3.2) are therefore always caught.
  const Identity<os::uid_t> r0;
  const XorMask r1(0x7FFFFFFF);
  const os::uid_t byte_masks[] = {0x000000FF, 0x0000FF00, 0x00FF0000, 0xFF000000};
  util::Rng rng{99};
  for (os::uid_t mask : byte_masks) {
    for (int trial = 0; trial < 200; ++trial) {
      const auto original = rng.next_u32();
      const auto value = rng.next_u32();
      const auto outcome = partial_overwrite(r0, r1, original, value, mask);
      EXPECT_TRUE(outcome.diverged()) << "mask " << mask;
      EXPECT_EQ(outcome.canonical0 ^ outcome.canonical1, 0x7FFFFFFFu & mask);
    }
  }
}

TEST(InterpreterModel, HighBitFlipEscapes) {
  // The paper's §3.2 admission, reproduced exactly: flipping only the sign
  // bit changes both canonical values the same way.
  const Identity<os::uid_t> r0;
  const XorMask r1(0x7FFFFFFF);
  const auto outcome =
      partial_overwrite(r0, r1, /*original=*/1000, /*value=*/1000 ^ 0x80000000u,
                        /*mask=*/0x80000000u);
  EXPECT_FALSE(outcome.diverged());
  EXPECT_EQ(outcome.canonical0, 1000u ^ 0x80000000u);
  EXPECT_EQ(outcome.canonical1, 1000u ^ 0x80000000u);
}

TEST(InterpreterModel, FullMaskWouldCloseTheHighBitGap) {
  // Had the kernel tolerated it, XOR 0xFFFFFFFF detects the high-bit flip —
  // the design trade-off §3.2 explains.
  const Identity<os::uid_t> r0;
  const XorMask r1(0xFFFFFFFF);
  const auto outcome =
      partial_overwrite(r0, r1, 1000, 1000 ^ 0x80000000u, 0x80000000u);
  EXPECT_TRUE(outcome.diverged());
}

TEST(InterpreterModel, AddressFlowMirrorsFigureOne) {
  TwoVariantDataFlow<std::uint64_t> flow(std::make_shared<Identity<std::uint64_t>>(),
                                         std::make_shared<AddressOffset>(0x80000000ULL));
  for (std::uint64_t addr : address_property_samples(2000)) {
    EXPECT_FALSE(flow.trusted_flow(addr).diverged());
    EXPECT_TRUE(flow.injected_flow(addr).diverged());
  }
}

TEST(InterpreterModel, ExplainInjectionNarrative) {
  const Identity<os::uid_t> r0;
  const XorMask r1(0x7FFFFFFF);
  const std::string text = explain_injection(r0, r1, 0);
  EXPECT_NE(text.find("ATTACK DETECTED"), std::string::npos);
  EXPECT_NE(text.find("0x7fffffff"), std::string::npos);
}

TEST(InterpreterModel, UidVariationCodersMatchModel) {
  const variants::UidVariation variation;
  const auto c0 = variation.coder_for(0);
  const auto c1 = variation.coder_for(1);
  TwoVariantDataFlow<os::uid_t> flow(c0, c1);
  EXPECT_FALSE(flow.trusted_flow(33).diverged());
  EXPECT_TRUE(flow.injected_flow(33).diverged());
}

}  // namespace
}  // namespace nv::core

// The load harness (src/load): deterministic open-workload generation, the
// closed/open-loop drivers against a REAL VariantFleet on a ManualClock, and
// the admission-control machinery they exposed (AdmissionPolicy, backpressure
// telemetry). Property-style admission tests drive the fleet directly with
// seeded random bursts; harness tests run whole virtual-time load points.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "fleet_test_harness.h"
#include "load/harness.h"
#include "load/workload.h"
#include "util/rng.h"

namespace nv {
namespace {

using fleet::AdmissionPolicy;
using fleet::harness::GatedJob;
using fleet::harness::wait_until;

// --- workload generation ----------------------------------------------------

load::WorkloadConfig small_workload() {
  load::WorkloadConfig config;
  config.seed = 0xBEEF;
  config.offered_per_sec = 200.0;
  config.duration = 500 * sim::kMillisecond;
  return config;
}

TEST(LoadWorkload, SameSeedProducesByteIdenticalSchedule) {
  const auto config = small_workload();
  const std::string first = load::serialize(load::generate(config));
  const std::string second = load::serialize(load::generate(config));
  ASSERT_FALSE(first.empty());
  // Byte-identical, not merely statistically similar: the schedule IS the
  // experiment input, and reproducibility is the contract.
  EXPECT_EQ(first, second);

  auto reseeded = config;
  reseeded.seed = 0xBEEF + 1;
  EXPECT_NE(first, load::serialize(load::generate(reseeded)));
}

TEST(LoadWorkload, RhoInversionRoundTrips) {
  load::WorkloadConfig config = small_workload();
  for (const double rho : {0.25, 0.8, 1.0, 2.5}) {
    config.offered_per_sec = load::rate_for_rho(config, rho, /*pool_size=*/4);
    EXPECT_NEAR(load::offered_rho(config, 4), rho, 1e-9);
  }
}

TEST(LoadWorkload, AttackerFractionDialsProbesIn) {
  auto config = small_workload();
  config.offered_per_sec = 1000.0;  // plenty of arrivals for stable fractions
  for (const auto& arrival : load::generate(config)) {
    EXPECT_NE(arrival.klass, load::RequestClass::kAttack);
  }
  config.attacker_fraction = 0.3;
  const auto schedule = load::generate(config);
  std::size_t attacks = 0;
  for (const auto& arrival : schedule) {
    if (arrival.klass == load::RequestClass::kAttack) ++attacks;
    // Every service demand respects the harness's millisecond clamp.
    EXPECT_GE(arrival.service, sim::kMillisecond);
  }
  const double fraction = static_cast<double>(attacks) / static_cast<double>(schedule.size());
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.45);
}

TEST(LoadWorkload, GeneratorRejectsNonsenseConfigs) {
  auto config = small_workload();
  config.offered_per_sec = 0.0;
  EXPECT_THROW((void)load::generate(config), std::invalid_argument);
  config = small_workload();
  config.http_small_weight = config.http_heavy_weight = config.ftp_weight = 0.0;
  EXPECT_THROW((void)load::generate(config), std::invalid_argument);
}

// --- knee detection ---------------------------------------------------------

TEST(LoadHarness, KneeDetectionFindsFirstSaturatedPoint) {
  std::vector<load::LoadCurvePoint> curve(4);
  curve[0].rho = 0.4;
  curve[0].report.latency_p99_ms = 10.0;
  curve[1].rho = 0.8;
  curve[1].report.latency_p99_ms = 14.0;
  curve[2].rho = 1.6;
  curve[2].report.latency_p99_ms = 80.0;  // > 3x the first point
  curve[3].rho = 3.2;
  curve[3].report.latency_p99_ms = 200.0;
  curve[3].report.shed_fraction = 0.5;
  EXPECT_EQ(load::knee_index(curve), 2u);

  // Any shedding flags the knee even when latency still looks tame.
  curve[2].report.latency_p99_ms = 15.0;
  curve[2].report.shed_fraction = 0.02;
  EXPECT_EQ(load::knee_index(curve), 2u);

  curve[2].report.shed_fraction = 0.0;
  curve[3].report.shed_fraction = 0.0;
  curve[3].report.latency_p99_ms = 20.0;
  EXPECT_EQ(load::knee_index(curve), curve.size());
  EXPECT_EQ(load::knee_index({}), 0u);
}

// --- whole load points on a real fleet --------------------------------------

load::LoadHarnessConfig harness_config() {
  load::LoadHarnessConfig config;
  config.pool_size = 2;
  config.queue_capacity = 4;
  config.quantum = std::chrono::milliseconds(5);
  config.workload = small_workload();
  return config;
}

TEST(LoadHarness, ShedVersusBlockAB) {
  // Same overloaded arrival schedule (rho = 2) through both admission
  // policies. Shedding bounds latency by refusing; blocking serves everything
  // at the price of unbounded queueing delay.
  load::LoadHarnessConfig config = harness_config();
  config.workload.offered_per_sec =
      load::rate_for_rho(config.workload, 2.0, config.pool_size);

  config.admission = AdmissionPolicy::kShed;
  const load::LoadReport shed = load::run_load(config);
  config.admission = AdmissionPolicy::kBlock;
  const load::LoadReport block = load::run_load(config);

  // Identical offered stream (same seed, same horizon).
  EXPECT_EQ(shed.offered, block.offered);
  ASSERT_GT(shed.offered, 0u);

  // kShed: refusals are explicit and accounted, and the bounded queue holds.
  EXPECT_GT(shed.shed, 0u);
  EXPECT_EQ(shed.offered, shed.admitted + shed.shed);
  EXPECT_LE(shed.queue_high_watermark, config.queue_capacity);
  EXPECT_GT(shed.shed_fraction, 0.0);

  // kBlock: nothing is refused — every arrival is eventually admitted and
  // served; the overload shows up as latency instead.
  EXPECT_EQ(block.shed, 0u);
  EXPECT_EQ(block.admitted, block.offered);
  EXPECT_EQ(block.completed, block.offered);
  EXPECT_GT(block.latency_p99_ms, shed.latency_p99_ms);
}

TEST(LoadHarness, CampaignUnderLoadRaisesOneAlertAndKeepsServing) {
  // A fleet under moderate benign load with a 10% attacker fraction must
  // correlate ALL probes into exactly one campaign (shared signature, window
  // spanning the horizon) while benign goodput stays near the no-attack
  // baseline.
  load::LoadHarnessConfig config = harness_config();
  config.admission = AdmissionPolicy::kShed;
  config.workload.offered_per_sec =
      load::rate_for_rho(config.workload, 0.5, config.pool_size);
  const load::LoadReport baseline = load::run_load(config);
  ASSERT_GT(baseline.completed, 0u);
  EXPECT_EQ(baseline.campaign_alerts, 0u);

  config.workload.attacker_fraction = 0.10;
  config.campaign.threshold = 3;
  config.campaign.window = std::chrono::milliseconds(
      static_cast<std::int64_t>(sim::to_ms(config.workload.duration)) * 10);
  const load::LoadReport attacked = load::run_load(config);

  EXPECT_EQ(attacked.campaign_alerts, 1u);
  EXPECT_GE(attacked.quarantined, config.campaign.threshold);
  // Every probe errored (threw) rather than completing cleanly.
  EXPECT_GE(attacked.errors, attacked.quarantined);
  // Benign goodput floor: the attack costs its arrival share plus respawn
  // churn, not the fleet.
  EXPECT_GT(attacked.goodput_per_sec, 0.6 * baseline.goodput_per_sec);
}

TEST(LoadHarness, ClosedLoopServesEveryClientRequest) {
  load::LoadHarnessConfig config = harness_config();
  config.mode = load::LoadMode::kClosedLoop;
  config.clients = 4;
  config.queue_capacity = 8;
  config.think_time = std::chrono::milliseconds(10);
  config.workload.duration = 300 * sim::kMillisecond;
  const load::LoadReport report = load::run_load(config);

  // A closed loop sized within capacity never refuses its own clients: every
  // request is admitted, served, and measured.
  ASSERT_GT(report.offered, 0u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.admitted, report.offered);
  EXPECT_EQ(report.completed, report.offered);
  EXPECT_EQ(report.latency_count, report.completed);
  EXPECT_GT(report.latency_p50_ms, 0.0);
}

TEST(LoadHarness, RepeatedRunsAreIdentical) {
  // The whole point of the settle protocol: an overloaded run (sheds, queue
  // at capacity, heavy-tailed services) reproduces every counter and every
  // latency percentile exactly — not statistically — across runs. This is
  // what lets bench_load_curves promise a byte-identical document.
  load::LoadHarnessConfig config = harness_config();
  config.admission = AdmissionPolicy::kShed;
  config.workload.offered_per_sec =
      load::rate_for_rho(config.workload, 1.5, config.pool_size);
  const load::LoadReport first = load::run_load(config);
  const load::LoadReport second = load::run_load(config);
  ASSERT_GT(first.shed, 0u);  // the hard regime, not an idle fleet
  EXPECT_EQ(first.describe(), second.describe());
  EXPECT_EQ(first.duration_s, second.duration_s);
  EXPECT_EQ(first.latency_p99_ms, second.latency_p99_ms);
}

TEST(LoadHarness, ClosedLoopRejectsCapacityBelowClients) {
  load::LoadHarnessConfig config = harness_config();
  config.mode = load::LoadMode::kClosedLoop;
  config.clients = 8;
  config.queue_capacity = 4;
  EXPECT_THROW((void)load::run_load(config), std::invalid_argument);
}

// --- admission-policy properties (fleet driven directly) --------------------

fleet::FleetConfig admission_fleet(fleet::ManualClock& clock, AdmissionPolicy admission) {
  fleet::FleetConfig config;
  config.spec = fleet::harness::uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 4;
  config.admission = admission;
  config.seed = 7;
  config.clock = clock.fn();
  return config;
}

TEST(Admission, QueueBoundHoldsUnderRandomizedBursts) {
  fleet::ManualClock clock;
  fleet::VariantFleet fleet(admission_fleet(clock, AdmissionPolicy::kShed));

  // Pin both lanes so queue depth is fully under the test's control.
  GatedJob pin_a;
  GatedJob pin_b;
  auto fa = fleet.submit(pin_a.job());
  pin_a.wait_started();
  auto fb = fleet.submit(pin_b.job());
  pin_b.wait_started();

  // Seeded random bursts; depth must NEVER exceed the bound, and every
  // refusal must be an already-resolved kShedError future.
  util::Rng rng(0x5eed);
  std::vector<std::future<fleet::JobOutcome>> futures;
  std::uint64_t offered = 0;
  std::uint64_t shed_seen = 0;
  for (int burst = 0; burst < 8; ++burst) {
    const std::uint64_t size = 1 + rng.below(6);
    for (std::uint64_t i = 0; i < size; ++i) {
      auto future = fleet.submit([](core::NVariantSystem&) {
        core::RunReport report;
        report.completed = true;
        return report;
      });
      ++offered;
      EXPECT_LE(fleet.queue_depth(), 4u);
      if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        const auto outcome = future.get();
        if (outcome.error == fleet::VariantFleet::kShedError) {
          ++shed_seen;
          continue;
        }
      }
      futures.push_back(std::move(future));
    }
  }
  EXPECT_GT(shed_seen, 0u);  // the bursts overflowed the bound at least once

  pin_a.release();
  pin_b.release();
  for (auto& future : futures) (void)future.get();
  (void)fa.get();
  (void)fb.get();
  fleet.shutdown();

  // Refusals are counted, not lost: offered splits exactly into shed +
  // admitted, and every admitted job reached a terminal state.
  const fleet::FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.jobs_shed, shed_seen);
  EXPECT_EQ(offered + 2, snap.jobs_shed + snap.jobs_submitted);  // +2 pins
  EXPECT_EQ(snap.jobs_submitted, snap.jobs_completed + snap.jobs_alarmed + snap.job_errors +
                                     snap.jobs_abandoned + snap.jobs_deadline_dropped);
}

TEST(Admission, AccountingIdentityHoldsAcrossPolicies) {
  for (const auto policy : {AdmissionPolicy::kShed, AdmissionPolicy::kDeadlineDrop}) {
    fleet::ManualClock clock;
    fleet::FleetConfig config = admission_fleet(clock, policy);
    config.queue_deadline = std::chrono::milliseconds(50);
    fleet::VariantFleet fleet(std::move(config));

    GatedJob pin_a;
    GatedJob pin_b;
    auto fa = fleet.submit(pin_a.job());
    pin_a.wait_started();
    auto fb = fleet.submit(pin_b.job());
    pin_b.wait_started();

    util::Rng rng(static_cast<std::uint64_t>(policy) + 99);
    std::vector<std::future<fleet::JobOutcome>> futures;
    std::uint64_t offered = 0;
    for (int burst = 0; burst < 6; ++burst) {
      for (std::uint64_t i = 0, n = 1 + rng.below(8); i < n; ++i) {
        futures.push_back(fleet.submit([](core::NVariantSystem&) {
          core::RunReport report;
          report.completed = true;
          return report;
        }));
        ++offered;
      }
      // Let some queued work age past the deadline under kDeadlineDrop.
      clock.advance(std::chrono::milliseconds(40));
    }
    pin_a.release();
    pin_b.release();
    for (auto& future : futures) (void)future.get();
    (void)fa.get();
    (void)fb.get();
    fleet.shutdown();

    const fleet::FleetSnapshot snap = fleet.telemetry().snapshot();
    EXPECT_EQ(offered + 2, snap.jobs_shed + snap.jobs_submitted);
    EXPECT_EQ(snap.jobs_submitted, snap.jobs_completed + snap.jobs_alarmed + snap.job_errors +
                                       snap.jobs_abandoned + snap.jobs_deadline_dropped);
    if (policy == AdmissionPolicy::kShed) {
      EXPECT_EQ(snap.jobs_deadline_dropped, 0u);
    }
  }
}

TEST(Admission, DeadlineDropExpiresStaleQueuedJobs) {
  fleet::ManualClock clock;
  fleet::FleetConfig config = admission_fleet(clock, AdmissionPolicy::kDeadlineDrop);
  config.queue_deadline = std::chrono::milliseconds(50);
  fleet::VariantFleet fleet(std::move(config));

  GatedJob pin_a;
  GatedJob pin_b;
  auto fa = fleet.submit(pin_a.job());
  pin_a.wait_started();
  auto fb = fleet.submit(pin_b.job());
  pin_b.wait_started();

  std::vector<std::future<fleet::JobOutcome>> stale;
  for (int i = 0; i < 3; ++i) {
    stale.push_back(fleet.submit([](core::NVariantSystem&) {
      core::RunReport report;
      report.completed = true;
      return report;
    }));
  }
  // Age the queue past the deadline BEFORE any lane frees up.
  clock.advance(std::chrono::milliseconds(100));
  pin_a.release();
  pin_b.release();

  for (auto& future : stale) {
    const auto outcome = future.get();
    EXPECT_EQ(outcome.error, fleet::VariantFleet::kDeadlineDropError);
    EXPECT_GE(outcome.latency.count(), 100'000);  // waited at least the advance
  }
  (void)fa.get();
  (void)fb.get();
  fleet.shutdown();
  EXPECT_EQ(fleet.telemetry().snapshot().jobs_deadline_dropped, 3u);
}

// --- backpressure telemetry -------------------------------------------------

TEST(Backpressure, ShedCounterMovesPerRefusal) {
  fleet::ManualClock clock;
  fleet::VariantFleet fleet(admission_fleet(clock, AdmissionPolicy::kShed));
  GatedJob pin_a;
  GatedJob pin_b;
  auto fa = fleet.submit(pin_a.job());
  pin_a.wait_started();
  auto fb = fleet.submit(pin_b.job());
  pin_b.wait_started();

  std::vector<std::future<fleet::JobOutcome>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(fleet.submit([](core::NVariantSystem&) {
      core::RunReport report;
      report.completed = true;
      return report;
    }));
  }
  for (int i = 0; i < 3; ++i) {
    auto refused = fleet.submit([](core::NVariantSystem&) { return core::RunReport{}; });
    ASSERT_EQ(refused.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(refused.get().error, fleet::VariantFleet::kShedError);
  }
  EXPECT_EQ(fleet.jobs_shed_hint(), 3u);
  EXPECT_EQ(fleet.telemetry().snapshot().jobs_shed, 3u);

  pin_a.release();
  pin_b.release();
  for (auto& future : queued) (void)future.get();
  (void)fa.get();
  (void)fb.get();
}

TEST(Backpressure, QueueHighWatermarkTracksPeakDepth) {
  fleet::ManualClock clock;
  fleet::VariantFleet fleet(admission_fleet(clock, AdmissionPolicy::kShed));
  // Serialize the pins so neither ever queues behind the other: the
  // watermark the burst below sets is then exactly the burst's peak.
  GatedJob pin_a;
  GatedJob pin_b;
  auto fa = fleet.submit(pin_a.job());
  pin_a.wait_started();
  auto fb = fleet.submit(pin_b.job());
  pin_b.wait_started();

  std::vector<std::future<fleet::JobOutcome>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(fleet.submit([](core::NVariantSystem&) {
      core::RunReport report;
      report.completed = true;
      return report;
    }));
  }
  EXPECT_EQ(fleet.telemetry().snapshot().queue_high_watermark, 3u);

  pin_a.release();
  pin_b.release();
  for (auto& future : queued) (void)future.get();
  (void)fa.get();
  (void)fb.get();
  // Draining does not erode the gauge: it records the PEAK.
  EXPECT_EQ(fleet.telemetry().snapshot().queue_high_watermark, 3u);
}

TEST(Backpressure, BlockedSubmitAccumulatesBlockedTime) {
  fleet::ManualClock clock;
  fleet::FleetConfig config = admission_fleet(clock, AdmissionPolicy::kBlock);
  config.queue_capacity = 2;
  fleet::VariantFleet fleet(std::move(config));

  GatedJob pin_a;
  GatedJob pin_b;
  auto fa = fleet.submit(pin_a.job());
  pin_a.wait_started();
  auto fb = fleet.submit(pin_b.job());
  pin_b.wait_started();
  std::vector<std::future<fleet::JobOutcome>> queued;
  for (int i = 0; i < 2; ++i) {  // fill the bound
    queued.push_back(fleet.submit([](core::NVariantSystem&) {
      core::RunReport report;
      report.completed = true;
      return report;
    }));
  }

  std::atomic<bool> entering{false};
  std::future<fleet::JobOutcome> blocked_future;
  std::thread submitter([&] {
    entering.store(true, std::memory_order_release);
    blocked_future = fleet.submit([](core::NVariantSystem&) {
      core::RunReport report;
      report.completed = true;
      return report;
    });
  });
  ASSERT_TRUE(wait_until([&] { return entering.load(std::memory_order_acquire); }));
  // The submitter is (about to be) parked on the full queue. Move virtual
  // time in small steps, yielding between them: every advance after it
  // actually blocks lands in its measured window, so the counter must see at
  // least one 10 ms step even under the harshest interleaving.
  for (int i = 0; i < 25; ++i) {
    clock.advance(std::chrono::milliseconds(10));
    std::this_thread::yield();
  }
  pin_a.release();
  pin_b.release();
  submitter.join();
  (void)blocked_future.get();
  for (auto& future : queued) (void)future.get();
  (void)fa.get();
  (void)fb.get();
  fleet.shutdown();

  EXPECT_GE(fleet.telemetry().snapshot().admission_blocked_us, 10'000u);
}

}  // namespace
}  // namespace nv

// Property sweep over ALL single-bit and single-byte partial overwrites of
// stored UIDs: detection holds exactly when the overwrite touches a
// reexpressed bit (every bit except bit 31 under the paper's mask).
#include <gtest/gtest.h>

#include "core/interpreter_model.h"
#include "util/rng.h"

namespace nv::core {
namespace {

class BitPosition : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitPosition, SingleBitOverwriteDetectedIffBitReexpressed) {
  const unsigned bit = GetParam();
  const os::uid_t mask = 1u << bit;
  const Identity<os::uid_t> r0;
  const XorMask r1(0x7FFFFFFF);
  util::Rng rng{1000 + bit};
  for (int trial = 0; trial < 100; ++trial) {
    const os::uid_t original = rng.next_u32();
    const os::uid_t value = rng.next_u32();
    const auto outcome = partial_overwrite(r0, r1, original, value, mask);
    // canonical0 ^ canonical1 == 0x7FFFFFFF & mask: nonzero (=> detected)
    // for bits 0..30, zero (=> silent) for bit 31.
    if (bit == 31) {
      EXPECT_FALSE(outcome.diverged());
    } else {
      EXPECT_TRUE(outcome.diverged());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, BitPosition, ::testing::Range(0u, 32u));

class FullMaskBits : public ::testing::TestWithParam<unsigned> {};

TEST_P(FullMaskBits, FullMaskDetectsEveryBit) {
  // The hypothetical 0xFFFFFFFF mask (§3.2's "ideally we would have used")
  // closes the bit-31 gap entirely.
  const unsigned bit = GetParam();
  const Identity<os::uid_t> r0;
  const XorMask r1(0xFFFFFFFF);
  util::Rng rng{2000 + bit};
  const os::uid_t original = rng.next_u32();
  const os::uid_t value = rng.next_u32();
  EXPECT_TRUE(partial_overwrite(r0, r1, original, value, 1u << bit).diverged());
}

INSTANTIATE_TEST_SUITE_P(AllBits, FullMaskBits, ::testing::Range(0u, 32u));

TEST(PartialOverwriteAlgebra, DivergenceEqualsMaskIntersection) {
  // The closed form behind all of the above: canonical0 XOR canonical1 ==
  // reexpression_mask AND overwrite_mask, independent of data.
  const Identity<os::uid_t> r0;
  util::Rng rng{77};
  for (int trial = 0; trial < 2000; ++trial) {
    const os::uid_t reexpr_mask = rng.next_u32();
    const XorMask r1(reexpr_mask);
    const os::uid_t original = rng.next_u32();
    const os::uid_t value = rng.next_u32();
    const os::uid_t overwrite_mask = rng.next_u32();
    const auto outcome = partial_overwrite(r0, r1, original, value, overwrite_mask);
    EXPECT_EQ(outcome.canonical0 ^ outcome.canonical1, reexpr_mask & overwrite_mask);
  }
}

TEST(PartialOverwriteAlgebra, MultiByteMasksAllDetected) {
  const Identity<os::uid_t> r0;
  const XorMask r1(0x7FFFFFFF);
  util::Rng rng{88};
  const os::uid_t masks[] = {0x0000FFFF, 0x00FFFF00, 0xFFFF0000, 0x00FFFFFF, 0xFFFFFF00};
  for (const os::uid_t mask : masks) {
    const auto outcome = partial_overwrite(r0, r1, rng.next_u32(), rng.next_u32(), mask);
    EXPECT_TRUE(outcome.diverged());
  }
}

}  // namespace
}  // namespace nv::core

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/expected.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace nv::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{13};
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.15);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{5};
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng{17};
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(10, 3);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.2);
}

TEST(Samples, PercentileEdgeCases) {
  Samples empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  Samples one;
  one.add(7.5);
  EXPECT_DOUBLE_EQ(one.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(one.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(one.percentile(100), 7.5);
}

TEST(Samples, MergeEqualsConcatenation) {
  Samples a;
  Samples b;
  Samples all;
  for (int i = 1; i <= 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 51; i <= 100; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.median(), all.median(), 1e-9);
  EXPECT_NEAR(a.percentile(95), all.percentile(95), 1e-9);
  // The merged-from collector is untouched.
  EXPECT_EQ(b.count(), 50u);
}

TEST(Samples, MergeEmptyIsNoOpEitherWay) {
  Samples s;
  s.add(1.0);
  s.add(3.0);
  Samples empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.median(), 2.0);
}

TEST(Samples, MergeAfterPercentileQueryResorts) {
  // percentile() sorts lazily; a merge after a query must invalidate the
  // sorted state so later percentiles see the combined, re-sorted samples.
  Samples s;
  s.add(10.0);
  s.add(30.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
  Samples more;
  more.add(20.0);
  more.add(40.0);
  s.merge(more);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(Histogram, CountsAndClamps) {
  Histogram h(0, 10, 10);
  h.add(-5);   // clamps to first bucket
  h.add(0.5);
  h.add(9.5);
  h.add(15);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
}

TEST(Strings, SplitAndJoin) {
  EXPECT_EQ(split("a:b::c", ':'), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split_ws("  a\tb  c "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(join({"x", "y"}, ", "), "x, y");
}

TEST(Strings, TrimAndLower) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_u64("42").value(), 42u);
  EXPECT_EQ(parse_u64("0x7FFFFFFF").value(), 0x7FFFFFFFu);
  EXPECT_FALSE(parse_u64("4x2").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_EQ(parse_i64("-17").value(), -17);
}

TEST(Strings, FormatAndHex) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(hex32(0x7FFFFFFF), "0x7fffffff");
  EXPECT_EQ(replace_all("aXbXc", "X", "--"), "a--b--c");
}

TEST(Expected, ValueAndErrorPaths) {
  Expected<int, std::string> good(5);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 5);
  Expected<int, std::string> bad(Unexpected<std::string>{"boom"});
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "boom");
  EXPECT_EQ(bad.value_or(9), 9);
  EXPECT_THROW((void)bad.value(), std::logic_error);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.align_right(1);
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
}

TEST(Logger, ThresholdFiltersAndSinkReceivesFormattedLevel) {
  CaptureSink capture;
  Logger logger(capture.sink(), LogLevel::kWarn);
  logger.info("dropped");
  logger.warn("kept");
  logger.error("also kept");
  EXPECT_FALSE(capture.contains("dropped"));
  EXPECT_TRUE(capture.contains("WARN kept"));
  EXPECT_TRUE(capture.contains("ERROR also kept"));
}

// Regression: threshold_ used to be a plain LogLevel written by
// set_threshold() while log() read it with no lock — a data race the thread
// sanitizer flags. Hammer log() from several threads while the main thread
// retunes the threshold; TSan (this suite runs in the CI thread-sanitizer
// job) fails the test if the filter read races the retune again.
TEST(Logger, ConcurrentThresholdRetuneIsRaceFree) {
  CaptureSink capture;
  Logger logger(capture.sink(), LogLevel::kInfo);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&logger, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        logger.info("tick");
      }
    });
  }
  for (int flip = 0; flip < 500; ++flip) {
    logger.set_threshold(flip % 2 == 0 ? LogLevel::kError : LogLevel::kTrace);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(logger.threshold(), LogLevel::kTrace);
  for (const auto& line : capture.lines()) {
    EXPECT_EQ(line, "INFO tick");
  }
}

}  // namespace
}  // namespace nv::util

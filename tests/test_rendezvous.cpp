// Rendezvous barrier semantics and the monitor's alarm bookkeeping.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "core/monitor.h"
#include "core/rendezvous.h"

namespace nv::core {
namespace {

using vkernel::Sys;
using vkernel::SyscallArgs;
using vkernel::SyscallResult;

SyscallArgs call(Sys no, std::uint64_t a = 0) {
  SyscallArgs args;
  args.no = no;
  args.ints = {a};
  return args;
}

TEST(Rendezvous, LeaderSeesAllArgumentsAndDistributesResults) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    EXPECT_EQ(all.size(), 2u);
    std::vector<SyscallResult> results(2);
    results[0].value = all[0].ints[0] * 10;
    results[1].value = all[1].ints[0] * 10;
    return results;
  });
  SyscallResult r0;
  SyscallResult r1;
  std::thread t0([&] { r0 = rdv.exchange(0, call(Sys::kGetpid, 1)); });
  std::thread t1([&] { r1 = rdv.exchange(1, call(Sys::kGetpid, 2)); });
  t0.join();
  t1.join();
  EXPECT_EQ(r0.value, 10u);
  EXPECT_EQ(r1.value, 20u);
  EXPECT_EQ(rdv.rounds_completed(), 1u);
}

TEST(Rendezvous, ManyRoundsKeepOrder) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    std::vector<SyscallResult> results(2);
    results[0].value = all[0].ints[0];
    results[1].value = all[1].ints[0];
    return results;
  });
  auto worker = [&](unsigned v) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      const auto r = rdv.exchange(v, call(Sys::kGettime, i));
      ASSERT_EQ(r.value, i);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(rdv.rounds_completed(), 100u);
}

TEST(Rendezvous, AbortWakesWaiter) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(10000));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(2); });
  std::thread t0([&] {
    EXPECT_THROW((void)rdv.exchange(0, call(Sys::kGetpid)), DivergenceAbort);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rdv.abort(Alarm{AlarmKind::kMemoryFault, 1, "test"});
  t0.join();
  EXPECT_TRUE(rdv.aborted());
}

TEST(Rendezvous, ExchangeAfterAbortThrowsImmediately) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.abort(Alarm{AlarmKind::kGuestError, 0, "dead"});
  EXPECT_THROW((void)rdv.exchange(0, call(Sys::kGetpid)), DivergenceAbort);
}

TEST(Rendezvous, TimeoutWhenPeerNeverArrives) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(50));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(2); });
  try {
    (void)rdv.exchange(0, call(Sys::kGetpid));
    FAIL() << "expected timeout abort";
  } catch (const DivergenceAbort& abort) {
    EXPECT_EQ(abort.alarm.kind, AlarmKind::kRendezvousTimeout);
  }
}

TEST(Rendezvous, TimeoutAbortsEveryWaiterWhenOnePeerStalls) {
  // 3-variant barrier, two arrive, the third never does: BOTH waiters must
  // unwind with the rendezvous-timeout alarm — no waiter may hang on the
  // other's abort.
  SyscallRendezvous rdv(3, std::chrono::milliseconds(50));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(3); });
  std::atomic<int> aborts{0};
  auto worker = [&](unsigned v) {
    try {
      (void)rdv.exchange(v, call(Sys::kGetpid));
      FAIL() << "variant " << v << " expected a timeout abort";
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kRendezvousTimeout);
      ++aborts;
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(aborts.load(), 2);
  EXPECT_TRUE(rdv.aborted());
}

TEST(Rendezvous, AbortWhileLeaderMidExecuteWakesEveryone) {
  // The leader runs the real syscall with the lock released (it may block in
  // accept indefinitely). An abort() during that window must unwind both the
  // leader (when its work returns) and the follower (immediately) — and the
  // follower's arrival timeout must NOT fire while the leader executes.
  SyscallRendezvous rdv(2, std::chrono::milliseconds(50));
  std::promise<void> entered_execute;
  std::promise<void> release_leader;
  auto released = release_leader.get_future().share();
  rdv.set_leader([&](const std::vector<SyscallArgs>&) {
    entered_execute.set_value();
    released.wait();  // simulate a long-blocking real syscall
    return std::vector<SyscallResult>(2);
  });
  std::atomic<int> aborts{0};
  auto worker = [&](unsigned v) {
    try {
      (void)rdv.exchange(v, call(Sys::kGetpid));
      FAIL() << "variant " << v << " expected DivergenceAbort";
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kMemoryFault);
      ++aborts;
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  entered_execute.get_future().wait();
  // Hold the leader mid-execute well past the arrival timeout: the follower
  // must keep waiting (execute may legitimately block), not raise a timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  rdv.abort(Alarm{AlarmKind::kMemoryFault, 0, "fault injected mid-execute"});
  release_leader.set_value();
  t0.join();
  t1.join();
  EXPECT_EQ(aborts.load(), 2);

  // Exchange-after-abort: the barrier stays poisoned; later arrivals unwind
  // immediately instead of waiting for peers that will never come.
  try {
    (void)rdv.exchange(0, call(Sys::kGetpid));
    FAIL() << "expected immediate DivergenceAbort after abort";
  } catch (const DivergenceAbort& abort) {
    EXPECT_EQ(abort.alarm.kind, AlarmKind::kMemoryFault);
  }
}

TEST(Rendezvous, SingleVariantRunsWithoutPeers) {
  SyscallRendezvous rdv(1, std::chrono::milliseconds(100));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    std::vector<SyscallResult> results(1);
    results[0].value = all[0].ints[0] + 1;
    return results;
  });
  EXPECT_EQ(rdv.exchange(0, call(Sys::kGetpid, 41)).value, 42u);
}

TEST(Rendezvous, InvalidVariantIndexRejected) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(100));
  EXPECT_THROW((void)rdv.exchange(5, call(Sys::kGetpid)), std::invalid_argument);
}

TEST(Rendezvous, ZeroVariantsRejected) {
  EXPECT_THROW(SyscallRendezvous(0, std::chrono::milliseconds(1)), std::invalid_argument);
}

TEST(Monitor, FirstAlarmWinsAndAllRecorded) {
  Monitor monitor;
  EXPECT_FALSE(monitor.triggered());
  monitor.raise(Alarm{AlarmKind::kMemoryFault, 0, "first"});
  monitor.raise(Alarm{AlarmKind::kTagFault, 1, "second"});
  EXPECT_TRUE(monitor.triggered());
  EXPECT_EQ(monitor.first_alarm()->detail, "first");
  EXPECT_EQ(monitor.alarms().size(), 2u);
}

TEST(Monitor, CallbackFires) {
  Monitor monitor;
  std::vector<AlarmKind> seen;
  monitor.set_alarm_callback([&](const Alarm& alarm) { seen.push_back(alarm.kind); });
  monitor.raise(Alarm{AlarmKind::kUidCheckFailed, 0, ""});
  EXPECT_EQ(seen, (std::vector<AlarmKind>{AlarmKind::kUidCheckFailed}));
}

TEST(Monitor, ResetClearsState) {
  Monitor monitor;
  monitor.raise(Alarm{AlarmKind::kGuestError, 0, ""});
  monitor.note_syscall_checked();
  monitor.reset();
  EXPECT_FALSE(monitor.triggered());
  EXPECT_EQ(monitor.syscalls_checked(), 0u);
}

TEST(Alarm, DescribeIncludesKindVariantDetail) {
  const Alarm alarm{AlarmKind::kUidCheckFailed, 1, "uid mismatch"};
  const std::string text = alarm.describe();
  EXPECT_NE(text.find("uid-check-failed"), std::string::npos);
  EXPECT_NE(text.find("variant 1"), std::string::npos);
  EXPECT_NE(text.find("uid mismatch"), std::string::npos);
}

}  // namespace
}  // namespace nv::core

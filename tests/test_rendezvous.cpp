// Rendezvous barrier semantics and the monitor's alarm bookkeeping.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "core/monitor.h"
#include "core/rendezvous.h"

namespace nv::core {
namespace {

using vkernel::Sys;
using vkernel::SyscallArgs;
using vkernel::SyscallResult;

SyscallArgs call(Sys no, std::uint64_t a = 0) {
  SyscallArgs args;
  args.no = no;
  args.ints = {a};
  return args;
}

TEST(Rendezvous, LeaderSeesAllArgumentsAndDistributesResults) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    EXPECT_EQ(all.size(), 2u);
    std::vector<SyscallResult> results(2);
    results[0].value = all[0].ints[0] * 10;
    results[1].value = all[1].ints[0] * 10;
    return results;
  });
  SyscallResult r0;
  SyscallResult r1;
  std::thread t0([&] { r0 = rdv.exchange(0, call(Sys::kGetpid, 1)); });
  std::thread t1([&] { r1 = rdv.exchange(1, call(Sys::kGetpid, 2)); });
  t0.join();
  t1.join();
  EXPECT_EQ(r0.value, 10u);
  EXPECT_EQ(r1.value, 20u);
  EXPECT_EQ(rdv.rounds_completed(), 1u);
}

TEST(Rendezvous, ManyRoundsKeepOrder) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    std::vector<SyscallResult> results(2);
    results[0].value = all[0].ints[0];
    results[1].value = all[1].ints[0];
    return results;
  });
  auto worker = [&](unsigned v) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      const auto r = rdv.exchange(v, call(Sys::kGettime, i));
      ASSERT_EQ(r.value, i);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(rdv.rounds_completed(), 100u);
}

TEST(Rendezvous, AbortWakesWaiter) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(10000));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(2); });
  std::thread t0([&] {
    EXPECT_THROW((void)rdv.exchange(0, call(Sys::kGetpid)), DivergenceAbort);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rdv.abort(Alarm{AlarmKind::kMemoryFault, 1, "test"});
  t0.join();
  EXPECT_TRUE(rdv.aborted());
}

TEST(Rendezvous, ExchangeAfterAbortThrowsImmediately) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.abort(Alarm{AlarmKind::kGuestError, 0, "dead"});
  EXPECT_THROW((void)rdv.exchange(0, call(Sys::kGetpid)), DivergenceAbort);
}

TEST(Rendezvous, TimeoutWhenPeerNeverArrives) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(50));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(2); });
  try {
    (void)rdv.exchange(0, call(Sys::kGetpid));
    FAIL() << "expected timeout abort";
  } catch (const DivergenceAbort& abort) {
    EXPECT_EQ(abort.alarm.kind, AlarmKind::kRendezvousTimeout);
  }
}

TEST(Rendezvous, TimeoutAbortsEveryWaiterWhenOnePeerStalls) {
  // 3-variant barrier, two arrive, the third never does: BOTH waiters must
  // unwind with the rendezvous-timeout alarm — no waiter may hang on the
  // other's abort.
  SyscallRendezvous rdv(3, std::chrono::milliseconds(50));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(3); });
  std::atomic<int> aborts{0};
  auto worker = [&](unsigned v) {
    try {
      (void)rdv.exchange(v, call(Sys::kGetpid));
      FAIL() << "variant " << v << " expected a timeout abort";
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kRendezvousTimeout);
      aborts.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(aborts.load(std::memory_order_relaxed), 2);
  EXPECT_TRUE(rdv.aborted());
}

TEST(Rendezvous, LateArriverAfterTimeoutAbortUnwindsImmediately) {
  // Regression: the arrival-timeout expiry must become a PROPER abort, not a
  // private unwind. Two of three variants stall out waiting for the third;
  // when the third finally shows up (long after the timeout already aborted
  // the round) it must throw immediately — not park on a stale generation.
  SyscallRendezvous rdv(3, std::chrono::milliseconds(50));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(3); });
  std::atomic<int> aborts{0};
  auto waiter = [&](unsigned v) {
    try {
      (void)rdv.exchange(v, call(Sys::kGetpid));
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kRendezvousTimeout);
      aborts.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread t0(waiter, 0);
  std::thread t1(waiter, 1);
  t0.join();
  t1.join();
  ASSERT_EQ(aborts.load(std::memory_order_relaxed), 2);
  // The late arriver: the round it missed is dead and the system is aborted —
  // its exchange must return (by throwing) well before another timeout.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)rdv.exchange(2, call(Sys::kGetpid)), DivergenceAbort);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(40));
}

TEST(Rendezvous, BatchExchangeRunsOneBarrierForManyCalls) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    std::vector<SyscallResult> results(2);
    results[0].value = all[0].ints[0] + 100;
    results[1].value = all[1].ints[0] + 100;
    return results;
  });
  auto worker = [&](unsigned v) {
    vkernel::SyscallBatch batch;
    for (std::uint64_t i = 0; i < 4; ++i) batch.calls.push_back(call(Sys::kGettime, i));
    const auto results = rdv.exchange_batch(v, std::move(batch));
    ASSERT_EQ(results.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(results[i].value, i + 100);
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(rdv.rounds_completed(), 1u);   // ONE barrier for the whole batch
  EXPECT_EQ(rdv.batches_completed(), 1u);  // and it counted as a batch round
  EXPECT_EQ(rdv.calls_exchanged(), 4u);
}

TEST(Rendezvous, BatchSizeDivergenceAborts) {
  // Identical guest code produces identical batch shapes; a size mismatch
  // means the variants took different paths — a divergence, not a protocol
  // quirk to paper over.
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(2); });
  std::atomic<int> aborts{0};
  auto worker = [&](unsigned v, std::size_t size) {
    vkernel::SyscallBatch batch;
    for (std::size_t i = 0; i < size; ++i) batch.calls.push_back(call(Sys::kGettime, i));
    try {
      (void)rdv.exchange_batch(v, std::move(batch));
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kSyscallMismatch);
      aborts.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread t0(worker, 0u, 2u);
  std::thread t1(worker, 1u, 3u);
  t0.join();
  t1.join();
  EXPECT_EQ(aborts.load(std::memory_order_relaxed), 2);
  EXPECT_TRUE(rdv.aborted());
  EXPECT_EQ(rdv.rounds_completed(), 0u);
}

TEST(Rendezvous, SingleVariantBatchAndAsyncRunWithoutPeers) {
  // N=1 degenerate path: no peers means every arrival is the leader and
  // every async claim is uncontested — both shapes must still work.
  SyscallRendezvous rdv(1, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    std::vector<SyscallResult> results(1);
    results[0].value = all[0].ints[0] * 2;
    return results;
  });
  vkernel::SyscallBatch batch;
  batch.calls = {call(Sys::kGettime, 3), call(Sys::kGettime, 4)};
  const auto results = rdv.exchange_batch(0, std::move(batch));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].value, 6u);
  EXPECT_EQ(results[1].value, 8u);
  const auto r = rdv.complete_async(0, call(Sys::kGetpid, 9), [](const SyscallArgs& args) {
    SyscallResult result;
    result.value = args.ints[0] + 1;
    return result;
  });
  EXPECT_EQ(r.value, 10u);
  EXPECT_EQ(rdv.rounds_completed(), 1u);
  EXPECT_EQ(rdv.async_completions(), 1u);
}

TEST(Rendezvous, AsyncCompletionsProceedWithoutBarrierRounds) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(5000));
  constexpr std::uint64_t kCalls = 200;
  auto worker = [&](unsigned v) {
    for (std::uint64_t i = 0; i < kCalls; ++i) {
      const auto r = rdv.complete_async(v, call(Sys::kGetpid, i), [](const SyscallArgs& args) {
        SyscallResult result;
        result.value = args.ints[0] * 3;
        return result;
      });
      ASSERT_EQ(r.value, i * 3);  // both variants see the published result
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(rdv.async_completions(), kCalls);  // each slot executed ONCE
  EXPECT_EQ(rdv.rounds_completed(), 0u);       // and no barrier was paid
  EXPECT_FALSE(rdv.aborted());
}

TEST(Rendezvous, AsyncStreamDivergenceAborts) {
  // The delayed-but-guaranteed check: whichever variant consumes a published
  // slot compares its canonical call against the claimer's — a different
  // syscall at the same stream position is a divergence.
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  std::atomic<int> aborts{0};
  auto worker = [&](unsigned v, Sys no) {
    try {
      (void)rdv.complete_async(v, call(no, 0), [](const SyscallArgs&) {
        return SyscallResult{};
      });
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kSyscallMismatch);
      aborts.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread t0(worker, 0u, Sys::kGetpid);
  std::thread t1(worker, 1u, Sys::kGettime);
  t0.join();
  t1.join();
  EXPECT_GE(aborts.load(std::memory_order_relaxed), 1);  // the claimer may have finished cleanly
  EXPECT_TRUE(rdv.aborted());
}

TEST(Rendezvous, BarrierCrossChecksAsyncStreamPrefix) {
  // A variant that silently SKIPS an async call diverges without ever
  // publishing mismatched args; the next barrier catches it — the leader
  // verifies every variant drained its async stream to the same position.
  SyscallRendezvous rdv(2, std::chrono::milliseconds(1000));
  rdv.set_leader([](const std::vector<SyscallArgs>&) { return std::vector<SyscallResult>(2); });
  std::atomic<int> aborts{0};
  auto worker = [&](unsigned v) {
    try {
      if (v == 0) {  // variant 0 issues the async call; variant 1 skips it
        (void)rdv.complete_async(0, call(Sys::kGetpid, 0), [](const SyscallArgs&) {
          return SyscallResult{};
        });
      }
      (void)rdv.exchange(v, call(Sys::kExit, 0));
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kSyscallMismatch);
      aborts.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(aborts.load(std::memory_order_relaxed), 2);
  EXPECT_TRUE(rdv.aborted());
  EXPECT_EQ(rdv.rounds_completed(), 0u);  // the poisoned round never ran
}

TEST(Rendezvous, AbortWhileLeaderMidExecuteWakesEveryone) {
  // The leader runs the real syscall with the lock released (it may block in
  // accept indefinitely). An abort() during that window must unwind both the
  // leader (when its work returns) and the follower (immediately) — and the
  // follower's arrival timeout must NOT fire while the leader executes.
  SyscallRendezvous rdv(2, std::chrono::milliseconds(50));
  std::promise<void> entered_execute;
  std::promise<void> release_leader;
  auto released = release_leader.get_future().share();
  rdv.set_leader([&](const std::vector<SyscallArgs>&) {
    entered_execute.set_value();
    released.wait();  // simulate a long-blocking real syscall
    return std::vector<SyscallResult>(2);
  });
  std::atomic<int> aborts{0};
  auto worker = [&](unsigned v) {
    try {
      (void)rdv.exchange(v, call(Sys::kGetpid));
      FAIL() << "variant " << v << " expected DivergenceAbort";
    } catch (const DivergenceAbort& abort) {
      EXPECT_EQ(abort.alarm.kind, AlarmKind::kMemoryFault);
      aborts.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  entered_execute.get_future().wait();
  // Hold the leader mid-execute well past the arrival timeout: the follower
  // must keep waiting (execute may legitimately block), not raise a timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  rdv.abort(Alarm{AlarmKind::kMemoryFault, 0, "fault injected mid-execute"});
  release_leader.set_value();
  t0.join();
  t1.join();
  EXPECT_EQ(aborts.load(std::memory_order_relaxed), 2);

  // Exchange-after-abort: the barrier stays poisoned; later arrivals unwind
  // immediately instead of waiting for peers that will never come.
  try {
    (void)rdv.exchange(0, call(Sys::kGetpid));
    FAIL() << "expected immediate DivergenceAbort after abort";
  } catch (const DivergenceAbort& abort) {
    EXPECT_EQ(abort.alarm.kind, AlarmKind::kMemoryFault);
  }
}

TEST(Rendezvous, SingleVariantRunsWithoutPeers) {
  SyscallRendezvous rdv(1, std::chrono::milliseconds(100));
  rdv.set_leader([](const std::vector<SyscallArgs>& all) {
    std::vector<SyscallResult> results(1);
    results[0].value = all[0].ints[0] + 1;
    return results;
  });
  EXPECT_EQ(rdv.exchange(0, call(Sys::kGetpid, 41)).value, 42u);
}

TEST(Rendezvous, InvalidVariantIndexRejected) {
  SyscallRendezvous rdv(2, std::chrono::milliseconds(100));
  EXPECT_THROW((void)rdv.exchange(5, call(Sys::kGetpid)), std::invalid_argument);
}

TEST(Rendezvous, ZeroVariantsRejected) {
  EXPECT_THROW(SyscallRendezvous(0, std::chrono::milliseconds(1)), std::invalid_argument);
}

TEST(Monitor, FirstAlarmWinsAndAllRecorded) {
  Monitor monitor;
  EXPECT_FALSE(monitor.triggered());
  monitor.raise(Alarm{AlarmKind::kMemoryFault, 0, "first"});
  monitor.raise(Alarm{AlarmKind::kTagFault, 1, "second"});
  EXPECT_TRUE(monitor.triggered());
  EXPECT_EQ(monitor.first_alarm()->detail, "first");
  EXPECT_EQ(monitor.alarms().size(), 2u);
}

TEST(Monitor, CallbackFires) {
  Monitor monitor;
  std::vector<AlarmKind> seen;
  monitor.set_alarm_callback([&](const Alarm& alarm) { seen.push_back(alarm.kind); });
  monitor.raise(Alarm{AlarmKind::kUidCheckFailed, 0, ""});
  EXPECT_EQ(seen, (std::vector<AlarmKind>{AlarmKind::kUidCheckFailed}));
}

TEST(Monitor, ResetClearsState) {
  Monitor monitor;
  monitor.raise(Alarm{AlarmKind::kGuestError, 0, ""});
  monitor.note_syscall_checked();
  monitor.reset();
  EXPECT_FALSE(monitor.triggered());
  EXPECT_EQ(monitor.syscalls_checked(), 0u);
}

TEST(Alarm, DescribeIncludesKindVariantDetail) {
  const Alarm alarm{AlarmKind::kUidCheckFailed, 1, "uid mismatch"};
  const std::string text = alarm.describe();
  EXPECT_NE(text.find("uid-check-failed"), std::string::npos);
  EXPECT_NE(text.find("variant 1"), std::string::npos);
  EXPECT_NE(text.find("uid mismatch"), std::string::npos);
}

}  // namespace
}  // namespace nv::core

// Fleet operations: attack-signature derivation, campaign correlation over
// synthetic and real alarm streams, work stealing around a held respawn,
// deadline-bounded graceful drain, and diversity-draw uniqueness — all
// deterministic: seeded factories, promise-gated jobs, and ManualClock time
// (no sleeps, no wall-clock dependence for correctness).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <set>
#include <thread>

#include "core/alarm.h"
#include "fleet/fleet.h"
#include "fleet/jobs.h"
#include "fleet/ops.h"
#include "fleet/session_factory.h"
#include "fleet_test_harness.h"
#include "util/strings.h"
#include "variants/registry.h"

namespace nv::fleet {
namespace {

using harness::GatedJob;
using harness::diversity_part;
using harness::poison_job;
using harness::uid_spec;
using harness::wait_until;

// --- AlarmSignature ---------------------------------------------------------

core::Alarm uid_mismatch_alarm(unsigned variant, std::uint64_t observed) {
  return core::Alarm{
      core::AlarmKind::kUidCheckFailed, variant,
      util::format("uid_value: canonical arguments diverge between variant 0 and %u "
                   "(uid_value(%llu, 0, 0, 0) vs uid_value(0, 0, 0, 0))",
                   variant, static_cast<unsigned long long>(observed))};
}

TEST(AlarmSignature, CollapsesDiversifiedValuesIntoOneShape) {
  // The same payload hitting two differently-diversified sessions leaves
  // different raw values (each drew its own mask) and may break a different
  // variant — but the SIGNATURE is identical.
  const auto a = core::signature_of(uid_mismatch_alarm(1, 0x5f3a91c2ULL));
  const auto b = core::signature_of(uid_mismatch_alarm(2, 431));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.kind, core::AlarmKind::kUidCheckFailed);
  EXPECT_EQ(a.syscall, "uid_value");
  EXPECT_EQ(a.shape,
            "uid_value: canonical arguments diverge between variant # and # "
            "(uid_value(#, #, #, #) vs uid_value(#, #, #, #))");
  EXPECT_EQ(a.key(), b.key());
}

TEST(AlarmSignature, HexAndDecimalLiteralsBothCollapse) {
  const core::Alarm alarm{core::AlarmKind::kTagFault, 3,
                          "tag 0x4e expected 0xa0 at 0x10000400 after 12 rounds"};
  const auto signature = core::signature_of(alarm);
  EXPECT_EQ(signature.shape, "tag # expected # at # after # rounds");
  EXPECT_TRUE(signature.syscall.empty());  // no "<syscall>:" attribution
}

TEST(AlarmSignature, NumericLeadingDetailYieldsNoSyscallAttribution) {
  // Regression: a detail that LEADS with a diversified value must not mint a
  // per-session pseudo-syscall ("4099", "0x5f3a91c2") — that would split one
  // campaign into N never-correlating signatures.
  const auto decimal = core::signature_of(
      core::Alarm{core::AlarmKind::kGuestError, 0, "4099: uid check rejected"});
  const auto hex = core::signature_of(
      core::Alarm{core::AlarmKind::kGuestError, 0, "0x5f3a91c2: uid check rejected"});
  EXPECT_TRUE(decimal.syscall.empty());
  EXPECT_TRUE(hex.syscall.empty());
  // And the two sessions' alarms still collapse to ONE signature.
  EXPECT_EQ(decimal, hex);
  EXPECT_EQ(decimal.shape, "#: uid check rejected");
}

TEST(AlarmSignature, DifferentKindsOrShapesAreDifferentCampaigns) {
  const auto uid = core::signature_of(uid_mismatch_alarm(1, 7));
  core::Alarm cond = uid_mismatch_alarm(1, 7);
  cond.kind = core::AlarmKind::kConditionMismatch;
  EXPECT_NE(uid.key(), core::signature_of(cond).key());

  const auto err_a = core::signature_of(
      core::Alarm{core::AlarmKind::kGuestError, 0, "heap corruption in handler"});
  const auto err_b = core::signature_of(
      core::Alarm{core::AlarmKind::kGuestError, 0, "stack smash in parser"});
  EXPECT_NE(err_a.key(), err_b.key());
  EXPECT_NE(uid.describe().find("uid_value"), std::string::npos);
}

// --- CampaignCorrelator (synthetic alarm streams, manual time) --------------

CampaignPolicy policy_of(unsigned k, std::chrono::milliseconds window) {
  CampaignPolicy policy;
  policy.threshold = k;
  policy.window = window;
  return policy;
}

TEST(CampaignCorrelator, KMinusOneQuarantinesAreNotACampaign) {
  ManualClock clock;
  CampaignCorrelator correlator(policy_of(3, std::chrono::milliseconds(1000)), clock.fn());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 10), 0, "fp-0").has_value());
  clock.advance(std::chrono::milliseconds(100));
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 20), 1, "fp-1").has_value());
  EXPECT_TRUE(correlator.alerts().empty());
  EXPECT_EQ(correlator.incidents_observed(), 2u);
}

TEST(CampaignCorrelator, KSameSignatureQuarantinesRaiseExactlyOneAlert) {
  ManualClock clock;
  CampaignCorrelator correlator(policy_of(3, std::chrono::milliseconds(1000)), clock.fn());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 10), 0, "fp-0").has_value());
  clock.advance(std::chrono::milliseconds(100));
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(2, 20), 1, "fp-1").has_value());
  clock.advance(std::chrono::milliseconds(100));
  const auto alert = correlator.observe(uid_mismatch_alarm(1, 30), 2, "fp-2");
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->session_ids, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(alert->fingerprints.size(), 3u);
  EXPECT_EQ(alert->signature.kind, core::AlarmKind::kUidCheckFailed);
  EXPECT_NE(alert->describe().find("3 sessions"), std::string::npos);

  // The 4th incident JOINS the open campaign: no second alert, but the
  // alert's member list grows.
  clock.advance(std::chrono::milliseconds(100));
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 40), 3, "fp-3").has_value());
  const auto alerts = correlator.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].session_ids.size(), 4u);
  EXPECT_EQ(alerts[0].session_ids.back(), 3u);
}

TEST(CampaignCorrelator, MixedSignaturesTrackSeparately) {
  ManualClock clock;
  CampaignCorrelator correlator(policy_of(3, std::chrono::milliseconds(1000)), clock.fn());
  const core::Alarm heap{core::AlarmKind::kGuestError, 0, "heap corruption in handler"};
  const core::Alarm stack{core::AlarmKind::kGuestError, 0, "stack smash in parser"};
  // Interleave two signatures; neither reaches K=3 until its own 3rd.
  EXPECT_FALSE(correlator.observe(heap, 0, "fp-0").has_value());
  EXPECT_FALSE(correlator.observe(stack, 1, "fp-1").has_value());
  EXPECT_FALSE(correlator.observe(heap, 2, "fp-2").has_value());
  EXPECT_FALSE(correlator.observe(stack, 3, "fp-3").has_value());
  EXPECT_TRUE(correlator.alerts().empty());

  const auto heap_alert = correlator.observe(heap, 4, "fp-4");
  ASSERT_TRUE(heap_alert.has_value());
  EXPECT_EQ(heap_alert->session_ids, (std::vector<std::uint64_t>{0, 2, 4}));
  const auto stack_alert = correlator.observe(stack, 5, "fp-5");
  ASSERT_TRUE(stack_alert.has_value());
  EXPECT_EQ(stack_alert->session_ids, (std::vector<std::uint64_t>{1, 3, 5}));
  EXPECT_EQ(correlator.alerts().size(), 2u);
}

TEST(CampaignCorrelator, SlidingWindowAgesIncidentsOut) {
  ManualClock clock;
  CampaignCorrelator correlator(policy_of(3, std::chrono::milliseconds(500)), clock.fn());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 1), 0, "fp-0").has_value());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 2), 1, "fp-1").has_value());
  // Both age out before the third arrives: still below threshold.
  clock.advance(std::chrono::milliseconds(501));
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 3), 2, "fp-2").has_value());
  EXPECT_TRUE(correlator.alerts().empty());
  // Two quick follow-ups complete a fresh window of three.
  clock.advance(std::chrono::milliseconds(10));
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 4), 3, "fp-3").has_value());
  clock.advance(std::chrono::milliseconds(10));
  EXPECT_TRUE(correlator.observe(uid_mismatch_alarm(1, 5), 4, "fp-4").has_value());
}

TEST(CampaignCorrelator, IdleExpiryClosesCampaignsWithoutAnObserve) {
  // Regression: windows used to be pruned only inside observe(), so a fleet
  // that went idle after a campaign reported it open FOREVER. The read APIs
  // prune now: open_campaigns() empties once the window ages out, while
  // alerts() keeps the historical record.
  ManualClock clock;
  CampaignCorrelator correlator(policy_of(2, std::chrono::milliseconds(500)), clock.fn());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 1), 0, "fp-0").has_value());
  EXPECT_TRUE(correlator.observe(uid_mismatch_alarm(1, 2), 1, "fp-1").has_value());
  ASSERT_EQ(correlator.open_campaigns().size(), 1u);

  // NOTHING further observed: the campaign must still close on its own.
  clock.advance(std::chrono::milliseconds(501));
  EXPECT_TRUE(correlator.open_campaigns().empty());
  EXPECT_EQ(correlator.alerts().size(), 1u);  // history survives the close

  // And the closed track really is gone: the next burst is a NEW campaign.
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 3), 2, "fp-2").has_value());
  EXPECT_TRUE(correlator.observe(uid_mismatch_alarm(1, 4), 3, "fp-3").has_value());
  EXPECT_EQ(correlator.alerts().size(), 2u);
  EXPECT_EQ(correlator.open_campaigns().size(), 1u);
}

TEST(CampaignCorrelator, SetPolicyAppliesToTheLiveWindow) {
  ManualClock clock;
  CampaignCorrelator correlator(policy_of(5, std::chrono::milliseconds(1000)), clock.fn());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 1), 0, "fp-0").has_value());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 2), 1, "fp-1").has_value());

  // Tighten K to 3 mid-stream: the 3rd same-signature incident now alerts.
  auto policy = correlator.policy();
  policy.threshold = 3;
  correlator.set_policy(policy);
  EXPECT_TRUE(correlator.observe(uid_mismatch_alarm(1, 3), 2, "fp-2").has_value());

  // Widening the window immediately keeps older incidents alive: at 1500 ms
  // the incidents from t=0 would have aged out of the original 1000 ms
  // window, but the widened one still holds them.
  policy.window = std::chrono::milliseconds(5000);
  correlator.set_policy(policy);
  clock.advance(std::chrono::milliseconds(1500));
  EXPECT_EQ(correlator.open_campaigns().size(), 1u);
}

TEST(CampaignCorrelator, CampaignClosesWhenWindowEmptiesThenCanRealert) {
  ManualClock clock;
  CampaignCorrelator correlator(policy_of(2, std::chrono::milliseconds(500)), clock.fn());
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 1), 0, "fp-0").has_value());
  EXPECT_TRUE(correlator.observe(uid_mismatch_alarm(1, 2), 1, "fp-1").has_value());
  // Campaign dies down; the same signature bursting again later is a NEW
  // campaign and must re-alert.
  clock.advance(std::chrono::milliseconds(1000));
  EXPECT_FALSE(correlator.observe(uid_mismatch_alarm(1, 3), 2, "fp-2").has_value());
  EXPECT_TRUE(correlator.observe(uid_mismatch_alarm(1, 4), 3, "fp-3").has_value());
  const auto alerts = correlator.alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].session_ids, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(alerts[1].session_ids, (std::vector<std::uint64_t>{2, 3}));
}

// --- VariantFleet: campaign correlation end to end --------------------------

TEST(FleetCampaign, SameSignatureQuarantinesRaiseOneFleetAlert) {
  ManualClock clock;  // frozen: every incident lands inside the window
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0xCA11;
  config.campaign = policy_of(3, std::chrono::milliseconds(1000));
  config.clock = clock.fn();
  std::atomic<unsigned> hook_fired{0};
  config.on_campaign = [&hook_fired](const CampaignAlert&) { hook_fired.fetch_add(1, std::memory_order_relaxed); };
  VariantFleet fleet(config);

  // Three quarantines sharing one signature = ONE campaign, not 3 incidents.
  for (int i = 0; i < 3; ++i) {
    const JobOutcome outcome = fleet.submit(poison_job("coordinated probe")).get();
    EXPECT_TRUE(outcome.session_quarantined);
  }
  const auto alerts = fleet.campaign_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].session_ids.size(), 3u);
  EXPECT_EQ(alerts[0].signature.kind, core::AlarmKind::kGuestError);
  EXPECT_EQ(alerts[0].signature.shape, "coordinated probe");
  EXPECT_EQ(hook_fired.load(std::memory_order_relaxed), 1u);

  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.campaign_alerts, 1u);
  EXPECT_EQ(snap.sessions_quarantined, 3u);
  EXPECT_EQ(fleet.quarantine_log().size(), 3u);  // forensics keep every incident
}

TEST(FleetCampaign, MixedSignatureQuarantinesStayBelowThreshold) {
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0xCA12;
  config.campaign = policy_of(3, std::chrono::milliseconds(1000));
  config.clock = clock.fn();
  VariantFleet fleet(config);

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(fleet.submit(poison_job("probe alpha")).get().session_quarantined);
    EXPECT_TRUE(fleet.submit(poison_job("probe beta")).get().session_quarantined);
  }
  EXPECT_TRUE(fleet.campaign_alerts().empty());
  EXPECT_EQ(fleet.telemetry().snapshot().campaign_alerts, 0u);
  EXPECT_EQ(fleet.quarantine_log().size(), 4u);
}

TEST(FleetCampaign, RotationEscalationRediversifiesTheSurvivingFleet) {
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 3;
  config.queue_capacity = 16;
  config.seed = 0xCA13;
  config.campaign = policy_of(2, std::chrono::milliseconds(1000));
  config.campaign.rotate_fleet_on_alert = true;
  config.clock = clock.fn();
  VariantFleet fleet(config);

  std::set<std::string> before;
  for (const auto& fp : fleet.live_fingerprints()) before.insert(diversity_part(fp));
  ASSERT_EQ(before.size(), 3u);

  EXPECT_TRUE(fleet.submit(poison_job("rotate probe")).get().session_quarantined);
  EXPECT_TRUE(fleet.submit(poison_job("rotate probe")).get().session_quarantined);
  ASSERT_EQ(fleet.campaign_alerts().size(), 1u);

  // The alert flags every lane except the quarantining one; each rotates on
  // its next wakeup. Exactly pool-1 rotations, regardless of which lanes the
  // probes burned.
  ASSERT_TRUE(wait_until(
      [&] { return fleet.telemetry().snapshot().sessions_rotated == 2u; }));

  // Every reexpression the attacker observed (or could extrapolate from the
  // campaign) is gone: the live fleet shares no diversity key with the
  // initial one.
  for (const auto& fp : fleet.live_fingerprints()) {
    EXPECT_FALSE(before.contains(diversity_part(fp))) << fp;
  }
  // And the rotated fleet still serves.
  EXPECT_TRUE(fleet.submit(jobs::uid_churn(5)).get().ok());
}

TEST(FleetCampaign, CoordinatedUidSmashAcrossSessionsIsOneCampaign) {
  // The acceptance scenario: a coordinated uid-smash campaign across 3
  // differently-diversified httpd sessions raises exactly ONE CampaignAlert
  // (with 3 members), not 3 unrelated incident records.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 3;
  config.queue_capacity = 32;
  config.seed = 0xD1CE;
  config.campaign = policy_of(3, std::chrono::milliseconds(60'000));
  config.clock = clock.fn();
  VariantFleet fleet(config);

  httpd::ServerConfig server;
  server.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
  server.max_requests = 10;

  std::vector<std::future<JobOutcome>> attacked;
  std::vector<std::future<JobOutcome>> benign;
  for (int i = 0; i < 3; ++i) {
    attacked.push_back(
        fleet.submit(jobs::httpd_request_stream(server, jobs::uid_smash_attack())));
    benign.push_back(
        fleet.submit(jobs::httpd_request_stream(server, jobs::normal_browse(4))));
  }
  for (auto& future : attacked) {
    const JobOutcome outcome = future.get();
    EXPECT_TRUE(outcome.report.attack_detected);
    EXPECT_TRUE(outcome.session_quarantined);
  }
  for (auto& future : benign) EXPECT_TRUE(future.get().ok());

  // Three sessions drew three different uid masks, so the raw diverging
  // values differ — yet all three alarms carry ONE signature.
  const auto log = fleet.quarantine_log();
  ASSERT_EQ(log.size(), 3u);
  const auto signature = core::signature_of(log[0].alarm);
  for (const auto& record : log) {
    EXPECT_EQ(core::signature_of(record.alarm), signature) << record.alarm.describe();
  }

  const auto alerts = fleet.campaign_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].session_ids.size(), 3u);
  EXPECT_EQ(alerts[0].signature.kind, core::AlarmKind::kUidCheckFailed);
  EXPECT_EQ(fleet.telemetry().snapshot().campaign_alerts, 1u);
}

// --- VariantFleet: injected-clock determinism -------------------------------

TEST(FleetClock, JobLatencyIsMeasuredOnTheInjectedClock) {
  // Regression: run_job used to read std::chrono::steady_clock directly, so
  // under a ManualClock every latency sample was wall-clock noise — poisoning
  // the population experiments' telemetry. Latency must be EXACTLY the manual
  // time the job advanced: not approximately, exactly.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 1;
  config.queue_capacity = 8;
  config.seed = 0xC10C;
  config.clock = clock.fn();
  VariantFleet fleet(config);

  const JobOutcome slow = fleet
                              .submit([&clock](core::NVariantSystem&) -> core::RunReport {
                                clock.advance(std::chrono::milliseconds(7));
                                core::RunReport report;
                                report.completed = true;
                                return report;
                              })
                              .get();
  EXPECT_EQ(slow.latency, std::chrono::microseconds(7000));

  // A job that advances nothing took zero manual time — however long the
  // worker actually spent on it.
  const JobOutcome instant = fleet.submit(jobs::uid_churn(5)).get();
  EXPECT_TRUE(instant.ok());
  EXPECT_EQ(instant.latency, std::chrono::microseconds(0));

  const FleetSnapshot snap = fleet.telemetry().snapshot();
  ASSERT_EQ(snap.latency_count, 2u);
  // Samples are exactly {0, 7000}: every derived statistic is exact too.
  EXPECT_DOUBLE_EQ(snap.latency_mean_us, 3500.0);
  EXPECT_DOUBLE_EQ(snap.latency_p50_us, 3500.0);
}

// --- VariantFleet: rotation failure visibility ------------------------------

TEST(FleetRotation, OperatorRotationRediversifiesEveryLane) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 3;
  config.queue_capacity = 16;
  config.seed = 0x207A;
  VariantFleet fleet(config);

  std::set<std::string> before;
  for (const auto& fp : fleet.live_fingerprints()) before.insert(diversity_part(fp));
  ASSERT_EQ(fleet.rotate_fleet(), 3u);
  ASSERT_TRUE(
      wait_until([&] { return fleet.telemetry().snapshot().sessions_rotated == 3u; }));
  for (const auto& fp : fleet.live_fingerprints()) {
    EXPECT_FALSE(before.contains(diversity_part(fp))) << fp;
  }
  EXPECT_EQ(fleet.telemetry().snapshot().rotations_failed, 0u);
  EXPECT_TRUE(fleet.submit(jobs::uid_churn(3)).get().ok());
}

TEST(FleetRotation, ExhaustedKeySpaceStopsRotationAndFiresTheHookOnce) {
  // The exhaustion contract: once the factory's real keyspace
  // (address-partitioning draws from exactly 16 strides) is spent, rotation
  // stops being requested at all — rotations_failed must NOT grow without
  // bound against an empty factory — the keys_remaining gauge reads 0, and
  // the on_keyspace_low operator hook has fired exactly once.
  int low_hook_calls = 0;
  KeyspaceAccount hook_account;
  ManualClock clock;
  FleetConfig config;
  config.spec.n_variants = 2;
  config.spec.variations = {"address-partitioning"};
  config.pool_size = 2;
  config.queue_capacity = 32;
  config.seed = 2026;
  config.keyspace_low_watermark = 1;  // fire on the last key, not earlier
  config.on_keyspace_low = [&](const KeyspaceAccount& account) {
    ++low_hook_calls;
    hook_account = account;
  };
  config.clock = clock.fn();
  VariantFleet fleet(config);
  EXPECT_EQ(fleet.keyspace().keys_total, 16u);
  EXPECT_EQ(fleet.keyspace().keys_remaining, 14u);  // 2 initial draws

  // 2 initial draws + 14 quarantine respawns = all 16 strides issued.
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(fleet.submit(poison_job("burn the key space")).get().session_quarantined);
  }
  ASSERT_TRUE(fleet.keyspace().exhausted());
  const auto before = fleet.live_fingerprints();

  // Both lanes are alive but NO unique reexpression remains: rotation is
  // refused up front, repeatedly, without ever flagging a lane — no amount
  // of elapsed backoff time changes that (an exhausted space cannot refill).
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fleet.rotate_fleet(), 0u);
    clock.advance(std::chrono::milliseconds(2'000));  // well past any backoff
  }
  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.sessions_rotated, 0u);
  EXPECT_EQ(snap.rotations_failed, 0u);  // no churn against the empty factory
  EXPECT_EQ(snap.keys_total, 16u);
  EXPECT_EQ(snap.keys_remaining, 0u);
  EXPECT_NE(snap.describe().find("0 of 16 keys remaining"), std::string::npos)
      << snap.describe();
  EXPECT_EQ(low_hook_calls, 1);  // exactly once, despite 5 refused rotations
  EXPECT_LE(hook_account.keys_remaining, 1u);  // fired at the watermark crossing
  EXPECT_EQ(fleet.live_fingerprints(), before);  // old sessions stayed in service
  EXPECT_TRUE(fleet.submit(jobs::uid_churn(3)).get().ok());
}

// --- VariantFleet: work stealing --------------------------------------------

TEST(FleetWorkStealing, RespawningLaneDonatesItsBacklogToPeers) {
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_future = gate->get_future().share();
  auto in_respawn = std::make_shared<std::promise<void>>();

  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0x57EA;
  config.respawn_hook = [in_respawn, gate_future](unsigned) {
    in_respawn->set_value();
    gate_future.wait();  // hold the lane mid-respawn
  };
  VariantFleet fleet(config);

  // Pin BOTH workers so the poison job and the churn backlog queue up with a
  // known round-robin layout before anything runs.
  GatedJob blocker_a;
  GatedJob blocker_b;
  auto fa = fleet.submit(blocker_a.job());
  auto fb = fleet.submit(blocker_b.job());
  blocker_a.wait_started();
  blocker_b.wait_started();

  auto poisoned = fleet.submit(poison_job("steal probe"));
  std::vector<std::future<JobOutcome>> churn;
  for (int i = 0; i < 4; ++i) churn.push_back(fleet.submit(jobs::uid_churn(5)));

  blocker_a.release();
  blocker_b.release();
  in_respawn->get_future().wait();  // one lane is now HELD inside its respawn

  // The held lane cannot pop anything — yet every queued churn job completes,
  // because the surviving lane steals the held lane's backlog.
  for (auto& future : churn) {
    const JobOutcome outcome = future.get();
    EXPECT_TRUE(outcome.ok()) << outcome.error;
  }
  EXPECT_GE(fleet.telemetry().snapshot().jobs_stolen, 1u);

  gate->set_value();  // let the respawn finish
  EXPECT_TRUE(poisoned.get().session_quarantined);
  EXPECT_TRUE(fa.get().ok());
  EXPECT_TRUE(fb.get().ok());
  fleet.shutdown();
  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.sessions_quarantined, 1u);
  EXPECT_EQ(snap.sessions_respawned, 1u);
}

TEST(FleetWorkStealing, WithoutStealingTheBacklogStallsBehindTheRespawn) {
  // The control experiment: stealing OFF pins jobs to their lane, so the
  // held lane's backlog cannot move until the respawn completes. With strict
  // affinity the round-robin layout is fully deterministic: blockers on
  // lanes {0,1}, then poison->0, churn c1->1, c2->0, c3->1, c4->0.
  auto gate = std::make_shared<std::promise<void>>();
  auto gate_future = gate->get_future().share();
  auto in_respawn = std::make_shared<std::promise<void>>();

  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0x57EB;
  config.work_stealing = false;
  config.respawn_hook = [in_respawn, gate_future](unsigned) {
    in_respawn->set_value();
    gate_future.wait();
  };
  VariantFleet fleet(config);

  GatedJob blocker_a;
  GatedJob blocker_b;
  auto fa = fleet.submit(blocker_a.job());
  auto fb = fleet.submit(blocker_b.job());
  blocker_a.wait_started();
  blocker_b.wait_started();

  auto poisoned = fleet.submit(poison_job("stall probe"));  // lane 0
  auto c1 = fleet.submit(jobs::uid_churn(5));               // lane 1
  auto c2 = fleet.submit(jobs::uid_churn(5));               // lane 0
  auto c3 = fleet.submit(jobs::uid_churn(5));               // lane 1
  auto c4 = fleet.submit(jobs::uid_churn(5));               // lane 0

  blocker_a.release();
  blocker_b.release();
  in_respawn->get_future().wait();  // lane 0 held mid-respawn

  // Lane 1 drains its own queue...
  EXPECT_TRUE(c1.get().ok());
  EXPECT_TRUE(c3.get().ok());
  // ...but lane 0's backlog is provably stuck: with the lane held and no
  // stealing, these futures cannot resolve no matter how long we wait.
  EXPECT_EQ(c2.wait_for(std::chrono::milliseconds(0)), std::future_status::timeout);
  EXPECT_EQ(c4.wait_for(std::chrono::milliseconds(0)), std::future_status::timeout);

  gate->set_value();
  EXPECT_TRUE(poisoned.get().session_quarantined);
  EXPECT_TRUE(c2.get().ok());
  EXPECT_TRUE(c4.get().ok());
  EXPECT_TRUE(fa.get().ok());
  EXPECT_TRUE(fb.get().ok());
  fleet.shutdown();
  EXPECT_EQ(fleet.telemetry().snapshot().jobs_stolen, 0u);
}

// --- VariantFleet: graceful drain -------------------------------------------

TEST(FleetDrain, ZeroDeadlineAbandonsTheQueueButFinishesInFlightJobs) {
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0xD7A1;
  VariantFleet fleet(config);

  GatedJob blocker_a;
  GatedJob blocker_b;
  auto fa = fleet.submit(blocker_a.job());
  auto fb = fleet.submit(blocker_b.job());
  blocker_a.wait_started();
  blocker_b.wait_started();

  std::vector<std::future<JobOutcome>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(fleet.submit(jobs::uid_churn(5)));
  ASSERT_EQ(fleet.queue_depth(), 4u);

  DrainReport report;
  std::thread drainer([&] { report = fleet.shutdown(std::chrono::milliseconds(0)); });

  // Every queued job's future resolves as abandoned (the workers are pinned,
  // so nothing else can resolve them).
  std::set<std::uint64_t> abandoned_ids;
  for (auto& future : queued) {
    const JobOutcome outcome = future.get();
    EXPECT_EQ(outcome.error, VariantFleet::kAbandonedError);
    EXPECT_FALSE(outcome.session_quarantined);
    abandoned_ids.insert(outcome.job_id);
  }

  // In-flight jobs are NOT abandoned: the drain joins only after they finish.
  blocker_a.release();
  blocker_b.release();
  EXPECT_TRUE(fa.get().ok());
  EXPECT_TRUE(fb.get().ok());
  drainer.join();

  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.jobs_abandoned, 4u);
  EXPECT_EQ(std::set<std::uint64_t>(report.abandoned_job_ids.begin(),
                                    report.abandoned_job_ids.end()),
            abandoned_ids);
  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.jobs_abandoned, report.jobs_abandoned);  // telemetry must match
  EXPECT_EQ(snap.jobs_completed, 2u);
  EXPECT_EQ(snap.jobs_submitted, snap.jobs_completed + snap.jobs_abandoned);
  EXPECT_NE(report.describe().find("abandoned"), std::string::npos);
}

TEST(FleetDrain, ManualClockDeadlineIsHonored) {
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 1;
  config.queue_capacity = 8;
  config.seed = 0xD7A2;
  config.clock = clock.fn();
  VariantFleet fleet(config);
  // Event-driven drain: every advance() wakes the drain loop so it re-reads
  // the manual clock instead of relying on its coarse fallback poll.
  clock.subscribe([&fleet] { fleet.notify_time_advanced(); });

  GatedJob blocker;
  auto fb = fleet.submit(blocker.job());
  blocker.wait_started();
  auto q1 = fleet.submit(jobs::uid_churn(5));
  auto q2 = fleet.submit(jobs::uid_churn(5));

  DrainReport report;
  std::thread drainer([&] { report = fleet.shutdown(std::chrono::milliseconds(100)); });

  // Time is frozen and the only worker is pinned, so the queued jobs sit
  // until WE expire the deadline by advancing the clock.
  while (q1.wait_for(std::chrono::milliseconds(0)) != std::future_status::ready) {
    clock.advance(std::chrono::milliseconds(200));
    std::this_thread::yield();
  }
  EXPECT_EQ(q1.get().error, VariantFleet::kAbandonedError);
  EXPECT_EQ(q2.get().error, VariantFleet::kAbandonedError);

  blocker.release();
  EXPECT_TRUE(fb.get().ok());
  drainer.join();
  EXPECT_EQ(report.jobs_abandoned, 2u);
  EXPECT_EQ(fleet.telemetry().snapshot().jobs_abandoned, 2u);
}

TEST(FleetDrain, DrainIsCleanWhenTheQueueEmptiesInTime) {
  ManualClock clock;  // frozen clock = the deadline can never expire
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 16;
  config.seed = 0xD7A3;
  config.clock = clock.fn();
  VariantFleet fleet(config);

  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(fleet.submit(jobs::uid_churn(5)));
  const DrainReport report = fleet.shutdown(std::chrono::milliseconds(1000));
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.jobs_abandoned, 0u);
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  EXPECT_EQ(fleet.telemetry().snapshot().jobs_abandoned, 0u);
  EXPECT_NE(report.describe().find("cleanly"), std::string::npos);
}

TEST(FleetDrain, TrySubmitRefusalsDuringDrainAreCountedExactly) {
  // Regression: try_submit racing a drain must refuse AND count — once per
  // call — whether the queue is full, mid-abandonment, or already empty.
  ManualClock clock;
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 1;
  config.queue_capacity = 1;
  config.seed = 0xD7A4;
  config.clock = clock.fn();
  VariantFleet fleet(config);
  clock.subscribe([&fleet] { fleet.notify_time_advanced(); });

  GatedJob blocker;
  auto fb = fleet.submit(blocker.job());
  blocker.wait_started();
  auto queued = fleet.submit(jobs::uid_churn(5));  // fills the single slot
  ASSERT_EQ(fleet.queue_depth(), 1u);

  // Refusal 1: full queue, still accepting.
  EXPECT_FALSE(fleet.try_submit(jobs::uid_churn(1)).has_value());

  DrainReport report;
  std::thread drainer([&] { report = fleet.shutdown(std::chrono::milliseconds(100)); });

  // Refusal 2: the queue is still full — and possibly mid-drain. Both paths
  // must refuse and count exactly once.
  EXPECT_FALSE(fleet.try_submit(jobs::uid_churn(1)).has_value());

  while (queued.wait_for(std::chrono::milliseconds(0)) != std::future_status::ready) {
    clock.advance(std::chrono::milliseconds(200));
    std::this_thread::yield();
  }
  EXPECT_EQ(queued.get().error, VariantFleet::kAbandonedError);

  // Refusal 3: empty queue, but draining.
  EXPECT_FALSE(fleet.try_submit(jobs::uid_churn(1)).has_value());

  blocker.release();
  EXPECT_TRUE(fb.get().ok());
  drainer.join();

  const FleetSnapshot snap = fleet.telemetry().snapshot();
  EXPECT_EQ(snap.jobs_rejected, 3u);
  EXPECT_EQ(report.jobs_abandoned, 1u);
  // Admission ledger balances: everything admitted either ran or was
  // abandoned; refusals never leak into the submitted count.
  EXPECT_EQ(snap.jobs_submitted, 2u);
  EXPECT_EQ(snap.jobs_submitted, snap.jobs_completed + snap.jobs_abandoned);
}

// --- SessionFactory: diversity-draw uniqueness ------------------------------

TEST(SessionFactoryUniqueness, NeverReissuesADiversityKey) {
  SessionFactory factory(uid_spec(), /*seed=*/0x0D1F, variants::builtin_registry());
  std::set<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    auto session = factory.make_session();
    ASSERT_TRUE(session.has_value()) << session.error();
    EXPECT_TRUE(keys.insert(session->diversity_key).second)
        << "duplicate reexpression issued: " << session->diversity_key;
  }
  EXPECT_EQ(factory.unique_keys_issued(), 64u);
}

TEST(SessionFactoryUniqueness, ExhaustedParameterSpaceIsAnExplicitError) {
  // address-partitioning draws its stride from exactly 16 values: the 17th
  // session CANNOT be uniquely diversified, and the factory must say so
  // rather than silently respawn a reexpression an attacker already probed.
  SessionSpec spec;
  spec.n_variants = 2;
  spec.variations = {"address-partitioning"};
  SessionFactory factory(spec, /*seed=*/2026, variants::builtin_registry());
  std::set<std::string> keys;
  for (int i = 0; i < 16; ++i) {
    auto session = factory.make_session();
    ASSERT_TRUE(session.has_value()) << "draw " << i << ": " << session.error();
    keys.insert(session->diversity_key);
  }
  EXPECT_EQ(keys.size(), 16u);
  auto exhausted = factory.make_session();
  ASSERT_FALSE(exhausted.has_value());
  EXPECT_NE(exhausted.error().find("exhausted redraws"), std::string::npos);
  EXPECT_NE(exhausted.error().find("duplicate diversity draw"), std::string::npos);
}

TEST(SessionFactoryUniqueness, QuarantineBurstRespawnsUnderSharedSeedStayUnique) {
  // Regression: a quarantine-heavy burst respawns many sessions from ONE
  // seeded generator; no fingerprint may repeat across the fleet's lifetime.
  FleetConfig config;
  config.spec = uid_spec();
  config.pool_size = 2;
  config.queue_capacity = 32;
  config.seed = 0xB125;
  VariantFleet fleet(config);

  std::vector<std::future<JobOutcome>> poisoned;
  for (int i = 0; i < 10; ++i) poisoned.push_back(fleet.submit(poison_job("burst")));
  for (auto& future : poisoned) EXPECT_TRUE(future.get().session_quarantined);

  std::map<std::string, std::set<std::string>> sessions_by_key;
  for (const auto& record : fleet.quarantine_log()) {
    sessions_by_key[diversity_part(record.fingerprint)].insert(record.fingerprint);
    sessions_by_key[diversity_part(record.replacement_fingerprint)].insert(
        record.replacement_fingerprint);
  }
  for (const auto& fp : fleet.live_fingerprints()) {
    sessions_by_key[diversity_part(fp)].insert(fp);
  }
  // Every diversity key belongs to exactly one session, ever.
  for (const auto& [key, sessions] : sessions_by_key) {
    EXPECT_EQ(sessions.size(), 1u) << "reexpression " << key << " was issued twice";
  }
  EXPECT_EQ(fleet.quarantine_log().size(), 10u);
}

}  // namespace
}  // namespace nv::fleet

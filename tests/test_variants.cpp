// Unit tests for the variation implementations (Table 1 rows as objects),
// including the network-diversity companions (port-hopping end to end
// through the MVEE, endpoint-rotation's entropy accounting).
#include <gtest/gtest.h>

#include <chrono>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "test_helpers.h"
#include "variants/address_partitioning.h"
#include "variants/instruction_tagging.h"
#include "variants/network_diversity.h"
#include "variants/registry.h"
#include "variants/stack_reversal.h"
#include "variants/uid_variation.h"
#include "vfs/filesystem.h"
#include "vfs/passwd.h"

namespace nv::variants {
namespace {

core::VariantConfig config_for(const core::Variation& variation, unsigned index) {
  core::VariantConfig config;
  config.index = index;
  variation.configure_variant(config);
  return config;
}

TEST(AddressPartitioningVariation, DisjointBases) {
  const AddressPartitioning partitioning;
  const auto c0 = config_for(partitioning, 0);
  const auto c1 = config_for(partitioning, 1);
  EXPECT_EQ(c0.memory_base, 0x10000000ULL);
  EXPECT_EQ(c1.memory_base, 0x10000000ULL + 0x80000000ULL);
  // Partitions do not overlap for 1 MiB segments.
  EXPECT_GT(c1.memory_base, c0.memory_base + c0.memory_size);
}

TEST(AddressPartitioningVariation, ReexpressionMatchesTableOne) {
  const AddressPartitioning partitioning;
  const auto r1 = partitioning.reexpression(1);
  EXPECT_EQ(r1.offset(), 0x80000000ULL);
  EXPECT_EQ(r1.reexpress(0x1000), 0x80001000ULL);
  EXPECT_EQ(r1.invert(0x80001000ULL), 0x1000ULL);
}

TEST(ExtendedPartitioningVariation, AddsNonZeroPageAlignedOffset) {
  const ExtendedAddressPartitioning extended(0x80000000ULL, 1ULL << 20, 99);
  const auto c0 = config_for(extended, 0);
  const auto c1 = config_for(extended, 1);
  EXPECT_EQ(c0.memory_base, 0x10000000ULL);
  const std::uint64_t extra = c1.memory_base - 0x10000000ULL - 0x80000000ULL;
  EXPECT_GT(extra, 0u);
  EXPECT_LT(extra, 1ULL << 20);
  EXPECT_EQ(extra % 4096, 0u);
}

TEST(ExtendedPartitioningVariation, OffsetIsDeterministicPerSeed) {
  const ExtendedAddressPartitioning a(0x80000000ULL, 1ULL << 20, 7);
  const ExtendedAddressPartitioning b(0x80000000ULL, 1ULL << 20, 7);
  const ExtendedAddressPartitioning c(0x80000000ULL, 1ULL << 20, 8);
  EXPECT_EQ(config_for(a, 1).memory_base, config_for(b, 1).memory_base);
  EXPECT_NE(config_for(a, 1).memory_base, config_for(c, 1).memory_base);
}

TEST(InstructionTaggingVariation, DistinctTagsPerVariant) {
  const InstructionTagging tagging;
  EXPECT_EQ(config_for(tagging, 0).code_tag, 0xA0);
  EXPECT_EQ(config_for(tagging, 1).code_tag, 0xA1);
  EXPECT_EQ(config_for(tagging, 2).code_tag, 0xA2);
}

TEST(InstructionTaggingVariation, LoadProgramTagsImage) {
  const InstructionTagging tagging;
  vkernel::AddressSpace memory;
  vkernel::VmProgram program;
  program.load_imm(0, 5).halt();
  const auto size = tagging.load_program(memory, 0x4000, program, 1);
  EXPECT_EQ(size, 1u + 6 + 1 + 1);  // tag+loadimm, tag+halt
  EXPECT_EQ(memory.load_u8(0x4000), 0xA1);
}

TEST(StackReversalVariation, AlternatesDirection) {
  const StackReversal reversal;
  EXPECT_FALSE(config_for(reversal, 0).reverse_stack);
  EXPECT_TRUE(config_for(reversal, 1).reverse_stack);
  EXPECT_FALSE(config_for(reversal, 2).reverse_stack);
}

TEST(UidVariationUnit, CoderMatchesMask) {
  const UidVariation variation;
  const auto c1 = config_for(variation, 1);
  EXPECT_EQ(c1.uid_coder->reexpress(0), 0x7FFFFFFFu);
  EXPECT_EQ(c1.uid_coder->invert(0x7FFFFFFFu), 0u);
  const auto c0 = config_for(variation, 0);
  EXPECT_EQ(c0.uid_coder->reexpress(12345), 12345u);
}

TEST(UidVariationUnit, PrepareFilesystemWritesDiversifiedCopies) {
  vfs::FileSystem fs;
  const auto root = os::Credentials::root();
  ASSERT_TRUE(fs.mkdir_p("/etc", root));
  ASSERT_TRUE(fs.write_file("/etc/passwd", "www:x:33:33:w:/w:/bin/f\n", root, 0644));
  ASSERT_TRUE(fs.write_file("/etc/group", "www:x:33:\n", root, 0644));
  const UidVariation variation;
  variation.prepare_filesystem(fs, 2);

  const auto p0 = vfs::parse_passwd(*fs.read_file("/etc/passwd-0", root));
  const auto p1 = vfs::parse_passwd(*fs.read_file("/etc/passwd-1", root));
  ASSERT_EQ(p0.size(), 1u);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p0[0].uid, 33u);
  EXPECT_EQ(p1[0].uid, 33u ^ 0x7FFFFFFFu);
  const auto g1 = vfs::parse_group(*fs.read_file("/etc/group-1", root));
  ASSERT_EQ(g1.size(), 1u);
  EXPECT_EQ(g1[0].gid, 33u ^ 0x7FFFFFFFu);
}

TEST(UidVariationUnit, MissingFilesAreSkippedQuietly) {
  vfs::FileSystem fs;  // no /etc at all
  const UidVariation variation;
  variation.prepare_filesystem(fs, 2);  // must not throw
  EXPECT_FALSE(fs.exists("/etc/passwd-0"));
}

TEST(UidVariationUnit, CanonicalizeRewritesOnlyUidArguments) {
  const UidVariation variation;
  vkernel::SyscallArgs args;
  args.no = vkernel::Sys::kSetresuid;
  args.ints = {0x7FFFFFFF ^ 5u, 0x7FFFFFFF ^ 6u, 0x7FFFFFFF ^ 7u};
  variation.canonicalize_args(1, args);
  EXPECT_EQ(args.ints, (std::vector<std::uint64_t>{5, 6, 7}));

  vkernel::SyscallArgs read_args;
  read_args.no = vkernel::Sys::kRead;
  read_args.ints = {3, 100};
  variation.canonicalize_args(1, read_args);
  EXPECT_EQ(read_args.ints, (std::vector<std::uint64_t>{3, 100}));  // untouched
}

TEST(UidVariationUnit, CcCmpOperatorByteNotRewritten) {
  const UidVariation variation;
  vkernel::SyscallArgs args;
  args.no = vkernel::Sys::kCcCmp;
  args.ints = {static_cast<std::uint64_t>(vkernel::CcOp::kLt), 0x7FFFFFFFu, 0x7FFFFFFEu};
  variation.canonicalize_args(1, args);
  EXPECT_EQ(args.ints[0], static_cast<std::uint64_t>(vkernel::CcOp::kLt));
  EXPECT_EQ(args.ints[1], 0u);
  EXPECT_EQ(args.ints[2], 1u);
}

TEST(UidVariationUnit, ReexpressResultOnlyForUidReturningCalls) {
  const UidVariation variation;
  vkernel::SyscallArgs getuid_call;
  getuid_call.no = vkernel::Sys::kGetuid;
  vkernel::SyscallResult result;
  result.value = 33;
  variation.reexpress_result(1, getuid_call, result);
  EXPECT_EQ(result.value, 33u ^ 0x7FFFFFFFu);

  vkernel::SyscallArgs read_call;
  read_call.no = vkernel::Sys::kRead;
  vkernel::SyscallResult read_result;
  read_result.value = 33;
  variation.reexpress_result(1, read_call, read_result);
  EXPECT_EQ(read_result.value, 33u);  // untouched
}

TEST(UidVariationUnit, FailedUidCallResultNotReexpressed) {
  const UidVariation variation;
  vkernel::SyscallArgs call;
  call.no = vkernel::Sys::kGeteuid;
  vkernel::SyscallResult result;
  result.err = os::Errno::kEPERM;
  result.value = static_cast<std::uint64_t>(-1);
  variation.reexpress_result(1, call, result);
  EXPECT_EQ(result.value, static_cast<std::uint64_t>(-1));  // error value untouched
}

TEST(UidVariationUnit, CustomDiversifiedFileList) {
  UidVariation::Options options;
  options.diversified_files = {"/srv/users.db"};
  const UidVariation variation(options);
  EXPECT_EQ(variation.unshared_paths(), (std::vector<std::string>{"/srv/users.db"}));
}

// --- Network diversity -------------------------------------------------------

TEST(PortHoppingVariation, MasksArePairwiseDistinctAndVariantZeroIsIdentity) {
  const PortHopping hopping;
  EXPECT_EQ(hopping.mask_for(0), 0u);
  EXPECT_EQ(hopping.mask_for(1), 0x8000u);
  EXPECT_EQ(hopping.mask_for(2), 0x4000u);
  EXPECT_FALSE(hopping.disjointedness_violation(0, 1).has_value());
  EXPECT_FALSE(hopping.disjointedness_violation(1, 2).has_value());
  // The shifted scheme runs out after 16 offset-carrying variants: variants
  // 17 and 18 would both shift the mask to zero (= variant 0's identity).
  EXPECT_TRUE(hopping.disjointedness_violation(17, 18).has_value());
  EXPECT_EQ(hopping.keyspace_bits(2), 15.0);
}

TEST(PortHoppingVariation, CoderAndRoleTransformInvertEachOther) {
  const PortHopping hopping;
  const auto coder = hopping.coder_for(1);
  EXPECT_EQ(coder->reexpress(8080), 8080u ^ 0x8000u);
  EXPECT_EQ(coder->invert(coder->reexpress(8080)), 8080u);

  const auto transform = hopping.role_transform(vkernel::ArgRole::kPort, 1);
  ASSERT_TRUE(transform.has_value());
  EXPECT_EQ(transform->invert(8080u ^ 0x8000u), 8080u);
  EXPECT_EQ(transform->reexpress(8080u), 8080u ^ 0x8000u);
  // Only the low 16 bits are a port; high garbage must not leak through.
  EXPECT_EQ(transform->invert(0xABCD'0000ULL | (8080u ^ 0x8000u)), 8080u);
  // Variant 0 and non-port roles are untouched.
  EXPECT_FALSE(hopping.role_transform(vkernel::ArgRole::kPort, 0).has_value());
  EXPECT_FALSE(hopping.role_transform(vkernel::ArgRole::kUid, 1).has_value());
}

TEST(PortHoppingVariation, RegistryRejectsDegenerateMasks) {
  EXPECT_THROW((void)make_builtin("port-hopping", {{"mask", std::uint64_t{0}}}),
               std::runtime_error);
  EXPECT_THROW((void)make_builtin("port-hopping", {{"mask", std::uint64_t{0x10000}}}),
               std::runtime_error);
  EXPECT_NO_THROW((void)make_builtin("port-hopping", {{"mask", std::uint64_t{0x9C3A}}}));
}

TEST(PortHoppingVariation, BenignGuestBindAgreesAcrossVariants) {
  // The transformed program's listen port goes through VariantConfig::
  // port_coder (GuestContext::bind applies it, like uid_const for UIDs), so
  // the monitor's kPort canonicalization sees the same canonical port from
  // every variant: no alarm, and the socket hub binds the canonical port.
  const auto system =
      testing::build_system(std::chrono::milliseconds(500), 2, {"port-hopping"});
  testing::LambdaGuest guest([](guest::GuestContext& ctx) {
    auto sock = ctx.socket();
    ASSERT_TRUE(sock.has_value());
    ASSERT_EQ(ctx.bind(*sock, 8080), os::Errno::kOk);
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.attack_detected);
  EXPECT_TRUE(system->hub().is_bound(8080));
}

TEST(PortHoppingVariation, InjectedRawPortDivergesAndAlarms) {
  // The attack: memory corruption overwrote the stored (reexpressed) port
  // constant with the attacker's absolute choice — the SAME raw bits in
  // every variant, bypassing the coder. Canonicalization then inverts
  // per-variant masks and the values disagree.
  const auto system =
      testing::build_system(std::chrono::milliseconds(500), 2, {"port-hopping"});
  testing::LambdaGuest guest([](guest::GuestContext& ctx) {
    auto sock = ctx.socket();
    ASSERT_TRUE(sock.has_value());
    vkernel::SyscallArgs args;
    args.no = vkernel::Sys::kBind;
    args.ints = {static_cast<std::uint64_t>(*sock), 31337};  // raw injected port
    (void)ctx.raw_syscall(std::move(args));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

TEST(EndpointRotationVariation, ReportsTheEndpointScanSpace) {
  const EndpointRotation rotation;
  EXPECT_EQ(rotation.keyspace_bits(2), 31.0);
  EXPECT_EQ(rotation.endpoint(), 0x80000000u);
  EXPECT_THROW(
      (void)make_builtin("endpoint-rotation", {{"endpoint", std::uint64_t{1} << 32}}),
      std::runtime_error);
}

}  // namespace
}  // namespace nv::variants

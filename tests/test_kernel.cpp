// Plain-kernel syscall semantics (the single-process baseline).
#include <gtest/gtest.h>

#include <thread>

#include "vkernel/kernel.h"

namespace nv::vkernel {
namespace {

struct KernelFixture : ::testing::Test {
  vfs::FileSystem fs;
  SocketHub hub;
  KernelContext ctx{fs, hub};
  PlainKernel kernel{ctx, "test-proc"};

  SyscallResult call(Sys no, std::vector<std::uint64_t> ints = {},
                     std::vector<std::string> strs = {}) {
    SyscallArgs args;
    args.no = no;
    args.ints = std::move(ints);
    args.strs = std::move(strs);
    return kernel.syscall(args);
  }
};

TEST_F(KernelFixture, OpenReadWriteClose) {
  ASSERT_TRUE(fs.write_file("/f.txt", "content", os::Credentials::root()));
  const auto open_result =
      call(Sys::kOpen, {static_cast<std::uint64_t>(os::OpenFlags::kRead), 0}, {"/f.txt"});
  ASSERT_TRUE(open_result.ok());
  const auto fd = open_result.value;
  const auto read_result = call(Sys::kRead, {fd, 100});
  EXPECT_EQ(read_result.data, "content");
  EXPECT_TRUE(call(Sys::kClose, {fd}).ok());
  EXPECT_EQ(call(Sys::kRead, {fd, 1}).err, os::Errno::kEBADF);
}

TEST_F(KernelFixture, FdNumbersAreLowestFree) {
  ASSERT_TRUE(fs.write_file("/a", "", os::Credentials::root()));
  const auto f0 = call(Sys::kOpen, {static_cast<std::uint64_t>(os::OpenFlags::kRead), 0}, {"/a"});
  const auto f1 = call(Sys::kOpen, {static_cast<std::uint64_t>(os::OpenFlags::kRead), 0}, {"/a"});
  EXPECT_EQ(f0.value, 0u);
  EXPECT_EQ(f1.value, 1u);
  ASSERT_TRUE(call(Sys::kClose, {f0.value}).ok());
  const auto f2 = call(Sys::kOpen, {static_cast<std::uint64_t>(os::OpenFlags::kRead), 0}, {"/a"});
  EXPECT_EQ(f2.value, 0u);  // slot reused
}

TEST_F(KernelFixture, StatReturnsMetadata) {
  ASSERT_TRUE(fs.write_file("/s.txt", "12345", os::Credentials::root(), 0640));
  const auto result = call(Sys::kStat, {}, {"/s.txt"});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.out_ints.size(), 6u);
  EXPECT_EQ(result.out_ints[1], 0u);      // not a dir
  EXPECT_EQ(result.out_ints[2], 0640u);   // mode
  EXPECT_EQ(result.out_ints[5], 5u);      // size
}

TEST_F(KernelFixture, CredentialSyscalls) {
  EXPECT_EQ(call(Sys::kGetuid).value, 0u);
  EXPECT_TRUE(call(Sys::kSeteuid, {1000}).ok());
  EXPECT_EQ(call(Sys::kGeteuid).value, 1000u);
  EXPECT_EQ(call(Sys::kGetuid).value, 0u);
  EXPECT_TRUE(call(Sys::kSeteuid, {0}).ok());
  EXPECT_TRUE(call(Sys::kSetuid, {500}).ok());
  EXPECT_EQ(call(Sys::kSetuid, {0}).err, os::Errno::kEPERM);
}

TEST_F(KernelFixture, PermissionDeniedOnProtectedFile) {
  ASSERT_TRUE(fs.write_file("/root.txt", "secret", os::Credentials::root(), 0600));
  ASSERT_TRUE(call(Sys::kSetuid, {1000}).ok());
  const auto result =
      call(Sys::kOpen, {static_cast<std::uint64_t>(os::OpenFlags::kRead), 0}, {"/root.txt"});
  EXPECT_EQ(result.err, os::Errno::kEACCES);
}

TEST_F(KernelFixture, PrivilegedPortRequiresRoot) {
  const auto sock = call(Sys::kSocket);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(call(Sys::kSetuid, {1000}).ok());
  EXPECT_EQ(call(Sys::kBind, {sock.value, 80}).err, os::Errno::kEACCES);
  EXPECT_TRUE(call(Sys::kBind, {sock.value, 8080}).ok());
}

TEST_F(KernelFixture, SocketLifecycleAndEcho) {
  const auto sock = call(Sys::kSocket);
  ASSERT_TRUE(call(Sys::kBind, {sock.value, 8080}).ok());
  ASSERT_TRUE(call(Sys::kListen, {sock.value}).ok());

  std::thread client([&] {
    auto conn = hub.connect(8080);
    ASSERT_TRUE(conn.has_value());
    ASSERT_TRUE(conn->send("hello").has_value());
    EXPECT_EQ(conn->recv(100).value(), "HELLO");
    conn->close();
  });

  const auto conn_fd = call(Sys::kAccept, {sock.value});
  ASSERT_TRUE(conn_fd.ok());
  const auto data = call(Sys::kRead, {conn_fd.value, 100});
  EXPECT_EQ(data.data, "hello");
  EXPECT_TRUE(call(Sys::kWrite, {conn_fd.value}, {"HELLO"}).ok());
  EXPECT_TRUE(call(Sys::kClose, {conn_fd.value}).ok());
  client.join();
}

TEST_F(KernelFixture, GettimeIsMonotonic) {
  const auto t1 = call(Sys::kGettime).value;
  const auto t2 = call(Sys::kGettime).value;
  EXPECT_LT(t1, t2);
}

TEST_F(KernelFixture, ExitMarksProcess) {
  EXPECT_FALSE(kernel.process().exited());
  EXPECT_TRUE(call(Sys::kExit, {3}).ok());
  EXPECT_TRUE(kernel.process().exited());
  EXPECT_EQ(kernel.process().exit_code(), 3);
}

TEST_F(KernelFixture, DetectionSyscallsDegenerateInPlainMode) {
  EXPECT_EQ(call(Sys::kUidValue, {1234}).value, 1234u);
  EXPECT_EQ(call(Sys::kCondChk, {1}).value, 1u);
  EXPECT_EQ(call(Sys::kCcCmp, {static_cast<std::uint64_t>(CcOp::kLt), 3, 5}).value, 1u);
  EXPECT_EQ(call(Sys::kCcCmp, {static_cast<std::uint64_t>(CcOp::kGt), 3, 5}).value, 0u);
}

TEST_F(KernelFixture, SyscallCounterIncrements) {
  const auto before = ctx.syscalls_executed();
  (void)call(Sys::kGetpid);
  (void)call(Sys::kGetpid);
  EXPECT_EQ(ctx.syscalls_executed(), before + 2);
}

TEST_F(KernelFixture, BadFdErrors) {
  EXPECT_EQ(call(Sys::kClose, {42}).err, os::Errno::kEBADF);
  EXPECT_EQ(call(Sys::kRead, {42, 1}).err, os::Errno::kEBADF);
  EXPECT_EQ(call(Sys::kWrite, {42}, {"x"}).err, os::Errno::kEBADF);
  EXPECT_EQ(call(Sys::kListen, {42}).err, os::Errno::kEBADF);
}

TEST_F(KernelFixture, WriteThenSeekThenRead) {
  const auto fd = call(
      Sys::kOpen,
      {static_cast<std::uint64_t>(os::OpenFlags::kReadWrite | os::OpenFlags::kCreate), 0644},
      {"/rw.txt"});
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(call(Sys::kWrite, {fd.value}, {"abcdef"}).ok());
  EXPECT_TRUE(call(Sys::kSeek, {fd.value, 2}).ok());
  EXPECT_EQ(call(Sys::kRead, {fd.value, 2}).data, "cd");
}

TEST(CcEval, AllOperators) {
  EXPECT_TRUE(cc_eval(CcOp::kEq, 5, 5));
  EXPECT_TRUE(cc_eval(CcOp::kNeq, 5, 6));
  EXPECT_TRUE(cc_eval(CcOp::kLt, 5, 6));
  EXPECT_TRUE(cc_eval(CcOp::kLeq, 5, 5));
  EXPECT_TRUE(cc_eval(CcOp::kGt, 6, 5));
  EXPECT_TRUE(cc_eval(CcOp::kGeq, 5, 5));
  EXPECT_FALSE(cc_eval(CcOp::kLt, 6, 5));
}

TEST(SyscallMetadata, NamesAndClasses) {
  EXPECT_EQ(sys_name(Sys::kUidValue), "uid_value");
  EXPECT_EQ(sys_class(Sys::kRead), SysClass::kInput);
  EXPECT_EQ(sys_class(Sys::kWrite), SysClass::kOutput);
  EXPECT_EQ(sys_class(Sys::kOpen), SysClass::kOpen);
  EXPECT_EQ(sys_class(Sys::kUidValue), SysClass::kDetection);
  EXPECT_EQ(sys_class(Sys::kSetuid), SysClass::kPerVariant);
  EXPECT_TRUE(returns_uid(Sys::kGeteuid));
  EXPECT_FALSE(returns_uid(Sys::kRead));
}

TEST(SyscallMetadata, UidArgIndices) {
  SyscallArgs args;
  args.no = Sys::kSetresuid;
  args.ints = {1, 2, 3};
  EXPECT_EQ(uid_arg_indices(args), (std::vector<std::size_t>{0, 1, 2}));
  args.no = Sys::kCcCmp;
  args.ints = {0, 10, 20};
  EXPECT_EQ(uid_arg_indices(args), (std::vector<std::size_t>{1, 2}));
  args.no = Sys::kRead;
  EXPECT_TRUE(uid_arg_indices(args).empty());
}

}  // namespace
}  // namespace nv::vkernel

// End-to-end: automatically transformed mini-C programs executing under the
// MVEE with the UID variation — the full §5 automation story.
#include <gtest/gtest.h>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "transform/mini_apache.h"
#include "transform/minic_guest.h"
#include "variants/registry.h"

namespace nv::transform {
namespace {

std::unique_ptr<core::NVariantSystem> make_system() {
  auto system = core::NVariantSystem::Builder()
                    .rendezvous_timeout(std::chrono::milliseconds(1000))
                    .variation(variants::make_builtin("uid-xor"))
                    .build();
  const auto root = os::Credentials::root();
  EXPECT_TRUE(system->fs().mkdir_p("/etc", root));
  EXPECT_TRUE(system->fs().mkdir_p("/var/log", root));
  EXPECT_TRUE(system->fs().write_file("/etc/passwd",
                                      "root:x:0:0:root:/root:/bin/sh\n"
                                      "www:x:33:33:w:/var/www:/bin/false\n"
                                      "alice:x:1000:1000:Alice:/home/a:/bin/sh\n",
                                      root));
  EXPECT_TRUE(system->fs().write_file("/etc/group", "root:x:0:\nwww:x:33:\n", root));
  return system;
}

TEST(MiniCMvee, TransformedProgramRunsCleanlyUnderUidVariation) {
  auto system = make_system();
  MiniCGuest guest(std::string(R"(
    int main() {
      uid_t worker = getpwnam_uid("www");
      if (worker == 0xFFFFFFFF) { return 2; }
      if (seteuid(worker) != 0) { return 3; }
      uid_t now = geteuid();
      if (now != worker) { return 4; }
      if (now == 0) { return 5; }
      log_msg("request handled");
      return 0;
    }
  )"));
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
  EXPECT_EQ(report.exit_codes, (std::vector<int>{0, 0}));
}

TEST(MiniCMvee, UntransformedProgramViolatesNormalEquivalence) {
  // Running the ORIGINAL program in both variants breaks property (1) of
  // §2.2: the untransformed constant reaches the kernel with different
  // canonical meanings and the monitor (correctly) alarms on normal input.
  auto system = make_system();
  MiniCGuest::Options options;
  options.apply_transformation = false;
  MiniCGuest guest(std::string(R"(
    int main() {
      if (seteuid(1000) != 0) { return 1; }
      return 0;
    }
  )"),
                   options);
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.attack_detected);
}

TEST(MiniCMvee, MiniApacheRunsToCompletionUnderMvee) {
  auto system = make_system();
  MiniCGuest guest{std::string(mini_apache_source())};
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
  EXPECT_EQ(report.exit_codes, (std::vector<int>{0, 0}));
  // Both variants produced identical transformed-site counts.
  EXPECT_EQ(guest.stats_for(0).total(), CaseStudyCounts::kTotal);
  EXPECT_EQ(guest.stats_for(1).total(), CaseStudyCounts::kTotal);
  // And identical request outcomes (served responses).
  EXPECT_EQ(guest.result_for(0).responses, guest.result_for(1).responses);
}

TEST(MiniCMvee, UserSpaceReversedModeAlsoRunsCleanly) {
  auto system = make_system();
  MiniCGuest::Options options;
  options.detection = DetectionMode::kUserSpaceReversed;
  MiniCGuest guest(std::string(mini_apache_source()), options);
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
}

TEST(MiniCMvee, LogUidHazardCausesBenignDivergence) {
  // A transformed program that logs a raw UID value reproduces the §4
  // error-log complication: identical program, divergent log bytes.
  auto system = make_system();
  MiniCGuest guest(std::string(R"(
    int main() {
      uid_t me = geteuid();
      log_uid("current identity", me);
      return 0;
    }
  )"));
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kArgumentMismatch);
}

TEST(MiniCMvee, InjectedUidConstantCaughtByDetectionSyscalls) {
  // Simulates the post-corruption state: a value that bypassed reexpression
  // (the attacker's injected constant) flows into a uid_value exposure.
  auto system = make_system();
  MiniCGuest::Options options;
  options.apply_transformation = false;  // raw value, as an attacker would inject
  MiniCGuest guest(std::string(R"(
    int main() {
      uid_t stolen = 0;
      uid_t checked = uid_value(stolen);
      setuid(checked);
      return 0;
    }
  )"),
                   options);
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.attack_detected);
  ASSERT_TRUE(report.alarm.has_value());
  EXPECT_EQ(report.alarm->kind, core::AlarmKind::kUidCheckFailed);
}

TEST(MiniCMvee, PlainKernelRunMatchesMveeSemantics) {
  // The same transformed program produces the same responses on the plain
  // kernel (variant-0 semantics) as under the MVEE — normal equivalence.
  MiniCGuest guest{std::string(mini_apache_source())};

  vfs::FileSystem fs;
  vkernel::SocketHub hub;
  vkernel::KernelContext ctx(fs, hub);
  const auto root = os::Credentials::root();
  ASSERT_TRUE(fs.mkdir_p("/etc", root));
  ASSERT_TRUE(fs.mkdir_p("/var/log", root));
  ASSERT_TRUE(fs.write_file("/etc/passwd",
                            "root:x:0:0:root:/root:/bin/sh\n"
                            "www:x:33:33:w:/var/www:/bin/false\n"
                            "alice:x:1000:1000:Alice:/home/a:/bin/sh\n",
                            root));
  ASSERT_TRUE(fs.write_file("/etc/group", "root:x:0:\nwww:x:33:\n", root));
  const auto plain = guest::run_plain(ctx, guest);
  ASSERT_TRUE(plain.completed);
  EXPECT_EQ(plain.exit_code, 0);
  const auto plain_responses = guest.result_for(0).responses;

  auto system = make_system();
  MiniCGuest guest2{std::string(mini_apache_source())};
  const auto report = guest::run_nvariant(*system, guest2);
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(guest2.result_for(0).responses, plain_responses);
  EXPECT_EQ(guest2.result_for(1).responses, plain_responses);
}

}  // namespace
}  // namespace nv::transform

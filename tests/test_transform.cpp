// Mini-C frontend, UID inference, and the automated transformation pass.
#include <gtest/gtest.h>

#include "transform/analysis.h"
#include "transform/lexer.h"
#include "transform/mini_apache.h"
#include "transform/parser.h"
#include "transform/printer.h"
#include "transform/transform_pass.h"

namespace nv::transform {
namespace {

Program parse_and_analyze(std::string_view source) {
  Program program = parse(source);
  const auto analysis = analyze(program);
  EXPECT_TRUE(analysis.ok()) << (analysis.errors.empty() ? "" : analysis.errors.front());
  return program;
}

TEST(Lexer, TokenKinds) {
  const auto tokens = lex("uid_t x = 0x7FFFFFFF; // comment\nif (x == 42) { }");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].text, "uid_t");
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_EQ(tokens[3].number, 0x7FFFFFFF);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(Lexer, StringEscapes) {
  const auto tokens = lex(R"("a\nb\"c")");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "a\nb\"c");
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_THROW((void)lex("int x = @;"), std::runtime_error);
  EXPECT_THROW((void)lex("\"unterminated"), std::runtime_error);
}

TEST(Parser, FunctionAndControlFlow) {
  const Program program = parse(R"(
    int main() {
      int i = 0;
      while (i < 10) {
        i = i + 1;
        if (i == 5) {
          return i;
        } else {
          log_msg("tick");
        }
      }
      return 0;
    }
  )");
  ASSERT_EQ(program.functions.size(), 1u);
  EXPECT_EQ(program.functions[0].name, "main");
  EXPECT_EQ(program.functions[0].body.size(), 3u);
}

TEST(Parser, PrecedenceAndAssociativity) {
  const Program program = parse("int f() { return 1 + 2 * 3 == 7 && true; }");
  const auto& ret = *program.functions[0].body[0];
  // Top: &&; lhs: (1+2*3) == 7.
  ASSERT_EQ(ret.expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(ret.expr->op, BinOp::kAnd);
  EXPECT_EQ(ret.expr->lhs->op, BinOp::kEq);
  EXPECT_EQ(ret.expr->lhs->lhs->op, BinOp::kAdd);
}

TEST(Parser, SyntaxErrorsCarryLineNumbers) {
  try {
    (void)parse("int main() {\n  int x = ;\n}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(Analysis, TypesResolveFromDeclarations) {
  Program program = parse_and_analyze(R"(
    int main() {
      uid_t u = getuid();
      if (u == 0) { return 1; }
      return 0;
    }
  )");
  EXPECT_TRUE(program.functions[0].body[1]->expr->uid_tainted);
}

TEST(Analysis, InfersUidTypeFromGetuidAssignment) {
  Program program = parse(R"(
    int main() {
      int who = getuid();
      if (who == 0) { return 1; }
      return 0;
    }
  )");
  const auto analysis = analyze(program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis.var_types.at("main").at("who"), Type::kUid);
  ASSERT_EQ(analysis.inferred_uid_vars.size(), 1u);
  EXPECT_EQ(analysis.inferred_uid_vars[0], "main::who");
}

TEST(Analysis, InfersUidTypeFromSetuidParameter) {
  Program program = parse(R"(
    int main() {
      int target = 1000;
      setuid(target);
      return 0;
    }
  )");
  const auto analysis = analyze(program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis.var_types.at("main").at("target"), Type::kUid);
}

TEST(Analysis, InfersTransitivelyThroughAssignments) {
  Program program = parse(R"(
    int main() {
      int a = getuid();
      int b = 0;
      b = a;
      setuid(b);
      return 0;
    }
  )");
  const auto analysis = analyze(program);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis.var_types.at("main").at("a"), Type::kUid);
  EXPECT_EQ(analysis.var_types.at("main").at("b"), Type::kUid);
}

TEST(Analysis, ReportsUnknownIdentifiers) {
  Program program = parse("int main() { return nope; }");
  const auto analysis = analyze(program);
  ASSERT_FALSE(analysis.ok());
  EXPECT_NE(analysis.errors[0].find("unknown variable"), std::string::npos);
}

TEST(Analysis, ReportsUnknownFunctions) {
  Program program = parse("int main() { frobnicate(); return 0; }");
  const auto analysis = analyze(program);
  ASSERT_FALSE(analysis.ok());
}

TEST(TransformPass, ReexpressesUidConstants) {
  Program program = parse_and_analyze(R"(
    int main() {
      uid_t u = getuid();
      if (u == 0) { return 1; }
      return 0;
    }
  )");
  TransformOptions options;
  options.mask = 0x7FFFFFFF;
  options.detection = DetectionMode::kNone;
  TransformStats stats;
  const Program out = transform_uid(program, options, &stats);
  EXPECT_EQ(stats.constants_reexpressed, 1);
  const std::string printed = print(out);
  EXPECT_NE(printed.find("0x7fffffff"), std::string::npos);
}

TEST(TransformPass, IdentityMaskLeavesConstantValuesButCountsSites) {
  Program program = parse_and_analyze("int main() { uid_t u = getuid(); if (u == 0) { return 1; } return 0; }");
  TransformOptions options;
  options.mask = 0;  // variant 0
  options.detection = DetectionMode::kNone;
  TransformStats stats;
  const Program out = transform_uid(program, options, &stats);
  EXPECT_EQ(stats.constants_reexpressed, 1);
  EXPECT_NE(print(out).find("(u == 0)"), std::string::npos);
}

TEST(TransformPass, ImplicitComparisonMadeExplicit) {
  // §3.3's exact example: if(!getuid()) becomes if(getuid() == 0).
  Program program = parse_and_analyze("int main() { if (!getuid()) { return 1; } return 0; }");
  TransformOptions options;
  options.detection = DetectionMode::kNone;
  TransformStats stats;
  const Program out = transform_uid(program, options, &stats);
  EXPECT_EQ(stats.implicit_made_explicit, 1);
  EXPECT_EQ(stats.constants_reexpressed, 1);
  EXPECT_NE(print(out).find("(getuid() == 0x7fffffff)"), std::string::npos);
}

TEST(TransformPass, BareUidConditionGetsExplicitNeq) {
  Program program = parse_and_analyze("int main() { if (getuid()) { return 1; } return 0; }");
  TransformOptions options;
  options.detection = DetectionMode::kNone;
  TransformStats stats;
  const Program out = transform_uid(program, options, &stats);
  EXPECT_EQ(stats.implicit_made_explicit, 1);
  EXPECT_NE(print(out).find("!="), std::string::npos);
}

TEST(TransformPass, ComparisonsBecomeDetectionSyscalls) {
  Program program = parse_and_analyze(R"(
    int main() {
      uid_t u = getuid();
      uid_t v = geteuid();
      if (u < v) { return 1; }
      return 0;
    }
  )");
  TransformStats stats;
  const Program out = transform_uid(program, TransformOptions{}, &stats);
  EXPECT_EQ(stats.cc_rewrites, 1);
  EXPECT_NE(print(out).find("cc_lt(u, v)"), std::string::npos);
}

TEST(TransformPass, UserSpaceModeReversesInequalities) {
  Program program = parse_and_analyze(R"(
    int main() {
      uid_t u = getuid();
      uid_t v = geteuid();
      if (u < v) { return 1; }
      if (u == v) { return 2; }
      return 0;
    }
  )");
  TransformOptions options;
  options.detection = DetectionMode::kUserSpaceReversed;
  TransformStats stats;
  const Program out = transform_uid(program, options, &stats);
  EXPECT_EQ(stats.inequalities_reversed, 1);  // == is representation-independent
  EXPECT_NE(print(out).find("(u > v)"), std::string::npos);
}

TEST(TransformPass, CondChkWrapsTaintedConditions) {
  Program program = parse_and_analyze(R"(
    int main() {
      uid_t u = getuid();
      bool privileged = u == 0;
      if (privileged) { return 1; }
      return 0;
    }
  )");
  TransformStats stats;
  const Program out = transform_uid(program, TransformOptions{}, &stats);
  EXPECT_EQ(stats.cond_chk_insertions, 1);
  EXPECT_NE(print(out).find("cond_chk(privileged)"), std::string::npos);
}

TEST(TransformPass, DirectCcConditionNotDoubleChecked) {
  Program program = parse_and_analyze(R"(
    int main() {
      uid_t u = getuid();
      if (u == 0) { return 1; }
      return 0;
    }
  )");
  TransformStats stats;
  const Program out = transform_uid(program, TransformOptions{}, &stats);
  EXPECT_EQ(stats.cc_rewrites, 1);
  EXPECT_EQ(stats.cond_chk_insertions, 0);
  EXPECT_EQ(print(out).find("cond_chk"), std::string::npos);
}

TEST(TransformPass, UidValueWrapsLookupArguments) {
  Program program = parse_and_analyze(R"(
    int main() {
      uid_t u = getuid();
      if (getpwuid_ok(u)) { return 1; }
      return 0;
    }
  )");
  TransformStats stats;
  const Program out = transform_uid(program, TransformOptions{}, &stats);
  EXPECT_EQ(stats.uid_value_insertions, 1);
  EXPECT_NE(print(out).find("getpwuid_ok(uid_value(u))"), std::string::npos);
}

TEST(TransformPass, SetuidArgumentsNotWrapped) {
  Program program = parse_and_analyze("int main() { setuid(getuid()); return 0; }");
  TransformStats stats;
  const Program out = transform_uid(program, TransformOptions{}, &stats);
  EXPECT_EQ(stats.uid_value_insertions, 0);
  EXPECT_EQ(print(out).find("uid_value"), std::string::npos);
}

TEST(CaseStudy, MiniApacheAnalyzesCleanly) {
  Program program = parse(mini_apache_source());
  const auto analysis = analyze(program);
  ASSERT_TRUE(analysis.ok()) << analysis.errors.front();
  // The deliberately int-declared CGI owner variable is inferred as uid_t.
  EXPECT_EQ(analysis.var_types.at("run_cgi").at("cgi_uid"), Type::kUid);
}

TEST(CaseStudy, ChangeCountsMatchPaperTable) {
  Program program = parse(mini_apache_source());
  ASSERT_TRUE(analyze(program).ok());
  TransformStats stats;
  (void)transform_uid(program, TransformOptions{}, &stats);
  // §4: "a total of 73 changes ... Fifteen ... constant UID values ...
  // 16 changes to introduce the new system calls to expose single UID value
  // usages ... 22 changes to expose conditional statements that compared UID
  // values, and 20 changes to check conditional statements."
  EXPECT_EQ(stats.constants_reexpressed, CaseStudyCounts::kConstants);
  EXPECT_EQ(stats.uid_value_insertions, CaseStudyCounts::kUidValue);
  EXPECT_EQ(stats.cc_rewrites, CaseStudyCounts::kComparisons);
  EXPECT_EQ(stats.cond_chk_insertions, CaseStudyCounts::kCondChk);
  EXPECT_EQ(stats.total(), CaseStudyCounts::kTotal);
}

TEST(Printer, RoundTripsThroughParser) {
  Program program = parse(mini_apache_source());
  const std::string printed = print(program);
  Program reparsed = parse(printed);
  EXPECT_EQ(reparsed.functions.size(), program.functions.size());
  // Printing the reparse reproduces the same text (fixed point).
  EXPECT_EQ(print(reparsed), printed);
}

// Parameterized sweep: transformation is idempotent in site counts across
// masks — the mask changes values, never the shape.
class MaskParam : public ::testing::TestWithParam<os::uid_t> {};

TEST_P(MaskParam, SiteCountsAreMaskInvariant) {
  Program program = parse(mini_apache_source());
  ASSERT_TRUE(analyze(program).ok());
  TransformOptions options;
  options.mask = GetParam();
  TransformStats stats;
  (void)transform_uid(program, options, &stats);
  EXPECT_EQ(stats.total(), CaseStudyCounts::kTotal);
}

INSTANTIATE_TEST_SUITE_P(Masks, MaskParam,
                         ::testing::Values(0u, 0x7FFFFFFFu, 0x3FFFFFFFu, 0x55555555u));

}  // namespace
}  // namespace nv::transform

// Deterministic harness for the fleet test suites: fixed-seed session specs,
// controllable (promise-gated) jobs, and a bounded busy-wait — so
// test_fleet.cpp / test_fleet_ops.cpp never sleep and never depend on the
// wall clock for correctness. Time-dependent behavior (correlator windows,
// drain deadlines) runs on an injected ManualClock instead.
#ifndef NV_TESTS_FLEET_TEST_HARNESS_H
#define NV_TESTS_FLEET_TEST_HARNESS_H

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/nvariant_system.h"
#include "fleet/fleet.h"
#include "fleet/session_factory.h"

namespace nv::fleet::harness {

inline SessionSpec uid_spec() {
  SessionSpec spec;
  spec.n_variants = 2;
  spec.variations = {"uid-xor"};
  spec.rendezvous_timeout = std::chrono::milliseconds(2000);
  return spec;
}

/// A job another thread holds open: runs until release() (for pinning a
/// worker lane) and reports cleanly. started() resolves once a worker picked
/// the job up.
class GatedJob {
 public:
  GatedJob()
      : started_(std::make_shared<std::promise<void>>()),
        release_(std::make_shared<std::promise<void>>()),
        release_future_(release_->get_future().share()) {}

  [[nodiscard]] FleetJob job() {
    auto started = started_;
    auto release = release_future_;
    return [started, release](core::NVariantSystem&) {
      started->set_value();
      release.wait();
      core::RunReport report;
      report.completed = true;
      return report;
    };
  }

  void wait_started() { started_->get_future().wait(); }
  void release() { release_->set_value(); }

 private:
  std::shared_ptr<std::promise<void>> started_;
  std::shared_ptr<std::promise<void>> release_;
  std::shared_future<void> release_future_;
};

/// A job that throws `message` — quarantining its session with a
/// kGuestError alarm whose signature is exactly the message shape. Same
/// message => same campaign signature; the deterministic way to synthesize
/// coordinated attacks without driving a server.
[[nodiscard]] inline FleetJob poison_job(std::string message) {
  return [message = std::move(message)](core::NVariantSystem&) -> core::RunReport {
    throw std::runtime_error(message);
  };
}

/// Spin (yielding) until `done()` holds. The timeout only bounds a FAILING
/// test; a passing test's result never depends on it.
template <typename Predicate>
[[nodiscard]] bool wait_until(Predicate done,
                              std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::yield();
  }
  return true;
}

/// "session-7[uid-xor{mask=0x4f}]" -> "uid-xor{mask=0x4f}": the diversity
/// identity with the (always-unique) session id stripped.
[[nodiscard]] inline std::string diversity_part(const std::string& fingerprint) {
  const auto open = fingerprint.find('[');
  const auto close = fingerprint.rfind(']');
  if (open == std::string::npos || close == std::string::npos || close <= open) {
    return fingerprint;
  }
  return fingerprint.substr(open + 1, close - open - 1);
}

}  // namespace nv::fleet::harness

#endif  // NV_TESTS_FLEET_TEST_HARNESS_H

// The full attack x defense matrix, pinned against the paper's predicted
// outcomes (parameterized over every cell).
#include <gtest/gtest.h>

#include "attack/attack.h"

namespace nv::attack {
namespace {

constexpr AttackKind kAttacks[] = {
    AttackKind::kUidFullWord,      AttackKind::kUidLowByte,      AttackKind::kUidHighBitFlip,
    AttackKind::kAddressInjection, AttackKind::kPointerLowBytes, AttackKind::kCodeInjection,
    AttackKind::kLinearOverrun,
};
constexpr DefenseKind kDefenses[] = {
    DefenseKind::kSingleProcess,        DefenseKind::kDualIdentical,
    DefenseKind::kAddressPartitioning,  DefenseKind::kExtendedPartitioning,
    DefenseKind::kInstructionTagging,   DefenseKind::kUidVariation,
    DefenseKind::kUidPlusAddress,       DefenseKind::kStackReversal,
};

using Cell = std::tuple<AttackKind, DefenseKind>;

class MatrixCell : public ::testing::TestWithParam<Cell> {};

TEST_P(MatrixCell, OutcomeMatchesPaperPrediction) {
  const auto [attack, defense] = GetParam();
  EXPECT_EQ(run_attack(attack, defense), expected_outcome(attack, defense))
      << to_string(attack) << " vs " << to_string(defense);
}

INSTANTIATE_TEST_SUITE_P(AllCells, MatrixCell,
                         ::testing::Combine(::testing::ValuesIn(kAttacks),
                                            ::testing::ValuesIn(kDefenses)),
                         [](const ::testing::TestParamInfo<Cell>& info) {
                           std::string name = std::string(to_string(std::get<0>(info.param))) +
                                              "_vs_" +
                                              std::string(to_string(std::get<1>(info.param)));
                           for (char& c : name) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return name;
                         });

// Spot checks with the headline claims stated explicitly.

TEST(AttackMatrix, UidAttackDefeatsEverythingExceptUidVariation) {
  EXPECT_EQ(run_attack(AttackKind::kUidFullWord, DefenseKind::kSingleProcess),
            Outcome::kSucceeded);
  EXPECT_EQ(run_attack(AttackKind::kUidFullWord, DefenseKind::kDualIdentical),
            Outcome::kSucceeded);  // redundancy alone is not diversity
  EXPECT_EQ(run_attack(AttackKind::kUidFullWord, DefenseKind::kAddressPartitioning),
            Outcome::kSucceeded);  // wrong attack class for this variation
  EXPECT_EQ(run_attack(AttackKind::kUidFullWord, DefenseKind::kUidVariation),
            Outcome::kDetected);
}

TEST(AttackMatrix, HighBitFlipIsTheDocumentedGap) {
  // §3.2: no alarm — but also no usable identity for the attacker.
  EXPECT_EQ(run_attack(AttackKind::kUidHighBitFlip, DefenseKind::kUidVariation),
            Outcome::kNoEffect);
}

TEST(AttackMatrix, PartialPointerOverwriteBeatsPlainPartitioningOnly) {
  EXPECT_EQ(run_attack(AttackKind::kPointerLowBytes, DefenseKind::kAddressPartitioning),
            Outcome::kSucceeded);  // §2.3's admitted limitation
  EXPECT_EQ(run_attack(AttackKind::kPointerLowBytes, DefenseKind::kExtendedPartitioning),
            Outcome::kDetected);   // Bruschi's offset closes it
}

TEST(AttackMatrix, StackReversalCatchesLinearOverruns) {
  // Franz [20]: reversing data layout between variants means the same linear
  // overrun corrupts different state, so the UID check diverges.
  EXPECT_EQ(run_attack(AttackKind::kLinearOverrun, DefenseKind::kDualIdentical),
            Outcome::kSucceeded);
  EXPECT_EQ(run_attack(AttackKind::kLinearOverrun, DefenseKind::kStackReversal),
            Outcome::kDetected);
  // But reversal gives NO coverage against targeted (non-linear) writes.
  EXPECT_EQ(run_attack(AttackKind::kUidFullWord, DefenseKind::kStackReversal),
            Outcome::kSucceeded);
}

TEST(AttackMatrix, CompositionCoversBothClasses) {
  EXPECT_EQ(run_attack(AttackKind::kUidFullWord, DefenseKind::kUidPlusAddress),
            Outcome::kDetected);
  EXPECT_EQ(run_attack(AttackKind::kAddressInjection, DefenseKind::kUidPlusAddress),
            Outcome::kDetected);
}

}  // namespace
}  // namespace nv::attack

// The policy-driven MVEE API: variation registry, diversity suites with
// all-pairs disjointedness validation, the NVariantSystem builder, and the
// declarative syscall descriptor table.
#include <gtest/gtest.h>

#include "core/diversity_suite.h"
#include "core/nvariant_system.h"
#include "core/variation_registry.h"
#include "guest/runners.h"
#include "test_helpers.h"
#include "variants/registry.h"
#include "variants/stack_reversal.h"
#include "variants/uid_variation.h"
#include "vkernel/syscall_descriptors.h"

namespace nv {
namespace {

using core::DiversitySuite;
using core::NVariantSystem;
using core::VariationParams;
using testing::LambdaGuest;
using vkernel::ArgRole;
using vkernel::ExecPolicy;
using vkernel::Sys;

const core::VariationRegistry& registry() { return variants::builtin_registry(); }

// --- registry ---------------------------------------------------------------

TEST(VariationRegistry, ConstructsEveryBuiltinByName) {
  for (const auto& name : registry().names()) {
    const auto variation = registry().make(name);
    ASSERT_TRUE(variation.has_value()) << name << ": " << variation.error();
    EXPECT_NE(*variation, nullptr);
    EXPECT_FALSE(registry().description(name).empty());
  }
  EXPECT_GE(registry().names().size(), 5u);  // the Table 1 catalog
}

TEST(VariationRegistry, UnknownNameReportsCatalog) {
  const auto result = registry().make("quantum-entanglement");
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("unknown variation"), std::string::npos);
  EXPECT_NE(result.error().find("uid-xor"), std::string::npos);  // catalog listed
}

TEST(VariationRegistry, AliasResolvesToSameFactory) {
  ASSERT_TRUE(registry().contains("uid-variation"));  // alias of uid-xor
  const auto via_alias = registry().make("uid-variation");
  ASSERT_TRUE(via_alias.has_value());
  EXPECT_EQ((*via_alias)->name(), "uid-variation");
}

TEST(VariationRegistry, ShadowingANameRetiresItsAliases) {
  core::VariationRegistry local;
  variants::register_builtin_variations(local);
  ASSERT_TRUE(local.contains("uid-variation"));  // alias of uid-xor
  // Shadow the primary: its aliases must not keep resolving to the old
  // factory (two names documented as equivalent diverging silently).
  local.add("uid-xor", "shadowed for test", [](const VariationParams&) {
    return util::Expected<core::VariationPtr, std::string>{
        std::make_shared<variants::StackReversal>()};
  });
  EXPECT_FALSE(local.contains("uid-variation"));
  const auto made = local.make("uid-xor");
  ASSERT_TRUE(made.has_value());
  EXPECT_EQ((*made)->name(), "stack-reversal");
}

TEST(VariationRegistry, TypedParametersReachTheVariation) {
  const auto variation = registry().make(
      "uid-xor", VariationParams{{"mask", std::uint64_t{0x00FF00FF}}});
  ASSERT_TRUE(variation.has_value());
  const auto* uid = dynamic_cast<const variants::UidVariation*>(variation->get());
  ASSERT_NE(uid, nullptr);
  EXPECT_EQ(uid->mask_for(1), 0x00FF00FFu);
}

TEST(VariationRegistry, WrongParameterTypeIsAnError) {
  const auto result =
      registry().make("uid-xor", VariationParams{{"mask", std::string("oops")}});
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("must be a u64"), std::string::npos);
}

TEST(VariationRegistry, MisspelledParameterIsAnError) {
  const auto result = registry().make(
      "address-partitioning", VariationParams{{"strde", std::uint64_t{4096}}});
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("strde"), std::string::npos);
}

TEST(VariationRegistry, ReusedParamsObjectStillCatchesMisspelledKeys) {
  // Consumption tracking is reset per make(): a key consumed by one factory
  // must not mask itself as "already read" for a factory that ignores it.
  const VariationParams params{{"stride", std::uint64_t{4096}}};
  ASSERT_TRUE(registry().make("address-partitioning", params));
  const auto reused = registry().make("uid-xor", params);
  ASSERT_FALSE(reused.has_value());
  EXPECT_NE(reused.error().find("stride"), std::string::npos);
}

TEST(VariationRegistry, FactoryValidatesParameterValues) {
  EXPECT_FALSE(
      registry().make("address-partitioning", VariationParams{{"stride", std::uint64_t{0}}}));
  EXPECT_FALSE(registry().make("instruction-tagging",
                               VariationParams{{"base-tag", std::uint64_t{0x1FF}}}));
}

// --- diversity suites -------------------------------------------------------

TEST(DiversitySuite, ComposesForTwoToFourVariantsWithAllPairsDisjoint) {
  for (unsigned n = 2; n <= 4; ++n) {
    auto suite = DiversitySuite::compose(
        n, {*registry().make("uid-xor"), *registry().make("address-partitioning"),
            *registry().make("instruction-tagging")});
    ASSERT_TRUE(suite.has_value()) << "n=" << n << ": " << suite.error();
    EXPECT_EQ(suite->n_variants(), n);
    EXPECT_EQ(suite->variations().size(), 3u);
    EXPECT_NE(suite->describe().find("across " + std::to_string(n)), std::string::npos);
  }
}

TEST(DiversitySuite, RejectsFewerThanTwoVariants) {
  const auto suite = DiversitySuite::compose(1, {*registry().make("uid-xor")});
  ASSERT_FALSE(suite.has_value());
  EXPECT_NE(suite.error().find("at least 2"), std::string::npos);
}

TEST(DiversitySuite, RejectsDegenerateUidMaskAtBuildTime) {
  // mask 0 makes R_1 identical to R_0: a §2.3 violation caught before launch.
  const auto suite = DiversitySuite::compose(
      2, {*registry().make("uid-xor", VariationParams{{"mask", std::uint64_t{0}}})});
  ASSERT_FALSE(suite.has_value());
  EXPECT_NE(suite.error().find("disjointedness violation"), std::string::npos);
}

TEST(DiversitySuite, RejectsUidMaskExhaustionAtLargeN) {
  // mask_for(i) = 0x7FFFFFFF >> (i-1) hits 0 at variant 32 — the same
  // reexpression as variant 0. The all-pairs check finds the collision.
  const auto suite = DiversitySuite::compose(33, {*registry().make("uid-xor")});
  ASSERT_FALSE(suite.has_value());
  EXPECT_NE(suite.error().find("disjointedness violation"), std::string::npos);
}

TEST(DiversitySuite, RejectsDuplicateVariation) {
  const auto suite = DiversitySuite::compose(
      2, {*registry().make("uid-xor"), *registry().make("uid-xor")});
  ASSERT_FALSE(suite.has_value());
  EXPECT_NE(suite.error().find("twice"), std::string::npos);
}

TEST(DiversitySuite, StackReversalHasNoValueDomainToViolate) {
  // Probabilistic layout variation: nothing to check, any N composes.
  EXPECT_TRUE(DiversitySuite::compose(4, {*registry().make("stack-reversal")}));
}

// --- builder ----------------------------------------------------------------

TEST(Builder, RejectsFewerThanTwoVariants) {
  auto result = NVariantSystem::Builder().n_variants(1).try_build();
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("at least 2"), std::string::npos);
  EXPECT_THROW((void)NVariantSystem::Builder().n_variants(0).build(), std::invalid_argument);
}

TEST(Builder, RejectsNonPositiveTimeout) {
  auto result =
      NVariantSystem::Builder().rendezvous_timeout(std::chrono::milliseconds(0)).try_build();
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("timeout"), std::string::npos);
  EXPECT_FALSE(NVariantSystem::Builder()
                   .rendezvous_timeout(std::chrono::milliseconds(-5))
                   .try_build());
}

TEST(Builder, RejectsZeroMemorySize) {
  EXPECT_FALSE(NVariantSystem::Builder().memory_size(0).try_build());
}

TEST(Builder, RejectsVariantCountConflictingWithSuite) {
  auto suite = DiversitySuite::compose(3, {*registry().make("uid-xor")});
  ASSERT_TRUE(suite.has_value());
  auto result = NVariantSystem::Builder().n_variants(2).suite(*suite).try_build();
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("conflicts"), std::string::npos);
}

TEST(Builder, SuiteSetsVariantCount) {
  auto suite = DiversitySuite::compose(4, {*registry().make("uid-xor")});
  ASSERT_TRUE(suite.has_value());
  const auto system = NVariantSystem::Builder().suite(*suite).build();
  EXPECT_EQ(system->n_variants(), 4u);
  EXPECT_TRUE(system->sealed());
}

TEST(Builder, VariationBeforeSuiteIsMergedNotDropped) {
  // suite() and variation() are order-independent: a variation added before
  // the suite must survive into the built system, not be silently discarded.
  auto suite = DiversitySuite::compose(2, {*registry().make("address-partitioning")});
  ASSERT_TRUE(suite.has_value());
  const auto system = NVariantSystem::Builder()
                          .variation(*registry().make("uid-xor"))
                          .suite(*suite)
                          .build();
  ASSERT_EQ(system->variations().size(), 2u);
}

TEST(Builder, ValidatesAdHocVariationsAtBuildTime) {
  auto degenerate = registry().make("uid-xor", VariationParams{{"mask", std::uint64_t{0}}});
  auto result = NVariantSystem::Builder().variation(*degenerate).try_build();
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("disjointedness"), std::string::npos);
}

TEST(Builder, EverySystemIsSealed) {
  // The legacy mutate-then-run protocol (add_variation/mark_unshared on a
  // default-constructed system) is gone: construction goes through the
  // Builder only, and the result is always sealed against policy mutation.
  const auto bare = NVariantSystem::Builder().build();
  EXPECT_TRUE(bare->sealed());
  const auto configured = NVariantSystem::Builder()
                              .variation(*registry().make("uid-xor"))
                              .unshared("/etc/extra")
                              .build();
  EXPECT_TRUE(configured->sealed());
  EXPECT_EQ(configured->variations().size(), 1u);
}

TEST(Builder, ThreeVariantSuiteRunsEndToEnd) {
  auto suite = DiversitySuite::compose(
      3, {*registry().make("uid-xor"), *registry().make("address-partitioning")});
  ASSERT_TRUE(suite.has_value());
  const auto system = NVariantSystem::Builder()
                          .suite(*std::move(suite))
                          .rendezvous_timeout(std::chrono::milliseconds(1000))
                          .build();
  const auto root = os::Credentials::root();
  ASSERT_TRUE(system->fs().mkdir_p("/etc", root));
  ASSERT_TRUE(system->fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root));
  ASSERT_TRUE(system->fs().write_file("/etc/group", "root:x:0:\n", root));

  LambdaGuest guest([](guest::GuestContext& ctx) {
    // Every variant sees root in its own encoding and can round-trip a drop.
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(0));
    EXPECT_EQ(ctx.seteuid(ctx.uid_const(1000)), os::Errno::kOk);
    EXPECT_EQ(ctx.geteuid(), ctx.uid_const(1000));
    ctx.exit(0);
  });
  const auto report = guest::run_nvariant(*system, guest);
  EXPECT_TRUE(report.completed) << (report.alarm ? report.alarm->describe() : "");
  EXPECT_FALSE(report.attack_detected);
  EXPECT_EQ(report.exit_codes.size(), 3u);

  // And the same suite still detects an injected concrete UID.
  LambdaGuest attacked([](guest::GuestContext& ctx) {
    (void)ctx.uid_value(0);
    ctx.exit(0);
  });
  const auto report2 = guest::run_nvariant(*system, attacked);
  EXPECT_TRUE(report2.attack_detected);
  ASSERT_TRUE(report2.alarm.has_value());
  EXPECT_EQ(report2.alarm->kind, core::AlarmKind::kUidCheckFailed);
}

// --- shared identity uid coder ---------------------------------------------

TEST(VariantConfig, DefaultUidCoderIsSharedSingleton) {
  const core::VariantConfig a;
  const core::VariantConfig b;
  ASSERT_NE(a.uid_coder, nullptr);
  EXPECT_EQ(a.uid_coder.get(), b.uid_coder.get());  // one immutable instance
  EXPECT_EQ(a.uid_coder->reexpress(1234), 1234u);
}

// --- syscall descriptor table -----------------------------------------------

TEST(SyscallDescriptors, EverySysEnumeratorHasACompleteDescriptor) {
  const auto& table = vkernel::descriptor_table();
  ASSERT_EQ(table.size(), vkernel::kSysCount);
  for (std::size_t i = 0; i < vkernel::kSysCount; ++i) {
    const auto sys = static_cast<Sys>(i);
    const auto& desc = vkernel::descriptor(sys);
    EXPECT_EQ(static_cast<std::size_t>(desc.no), i);
    EXPECT_FALSE(desc.name.empty());
    EXPECT_EQ(desc.name, vkernel::sys_name(sys));
    EXPECT_EQ(desc.cls, vkernel::sys_class(sys));
  }
}

TEST(SyscallDescriptors, DetectionSyscallsAreMarkedDetection) {
  for (const Sys sys : {Sys::kUidValue, Sys::kCondChk, Sys::kCcCmp}) {
    EXPECT_EQ(vkernel::descriptor(sys).exec, ExecPolicy::kDetection);
  }
  EXPECT_EQ(vkernel::descriptor(Sys::kOpen).exec, ExecPolicy::kOpen);
  EXPECT_EQ(vkernel::descriptor(Sys::kExit).exec, ExecPolicy::kExit);
}

TEST(SyscallDescriptors, UidRolesMatchTheLegacyIndexHelpers) {
  vkernel::SyscallArgs args;
  args.no = Sys::kSetresuid;
  args.ints = {1, 2, 3};
  EXPECT_EQ(vkernel::uid_arg_indices(args), (std::vector<std::size_t>{0, 1, 2}));
  args.no = Sys::kCcCmp;
  args.ints = {0, 10, 20};
  EXPECT_EQ(vkernel::uid_arg_indices(args), (std::vector<std::size_t>{1, 2}));
  args.no = Sys::kSetgroups;
  args.ints = {1, 2, 3, 4, 5, 6};  // variable-length list: every slot is a uid
  EXPECT_EQ(vkernel::uid_arg_indices(args), (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
  args.no = Sys::kWrite;
  args.ints = {3};
  EXPECT_TRUE(vkernel::uid_arg_indices(args).empty());
}

TEST(SyscallDescriptors, ResultRolesDriveReexpression) {
  EXPECT_EQ(vkernel::descriptor(Sys::kGeteuid).result_role, ArgRole::kUid);
  EXPECT_EQ(vkernel::descriptor(Sys::kUidValue).result_role, ArgRole::kUid);
  EXPECT_EQ(vkernel::descriptor(Sys::kRead).result_role, ArgRole::kNone);
  EXPECT_TRUE(vkernel::returns_uid(Sys::kGetuid));
  EXPECT_FALSE(vkernel::returns_uid(Sys::kWrite));
}

TEST(SyscallDescriptors, FdRolesDriveSharedRouting) {
  EXPECT_EQ(vkernel::descriptor(Sys::kRead).int_role(0), ArgRole::kFd);
  EXPECT_EQ(vkernel::descriptor(Sys::kWrite).int_role(0), ArgRole::kFd);
  EXPECT_EQ(vkernel::descriptor(Sys::kSeek).exec, ExecPolicy::kFdRouted);
  EXPECT_EQ(vkernel::descriptor(Sys::kStat).str0_role, ArgRole::kPath);
  EXPECT_EQ(vkernel::descriptor(Sys::kAccept).exec, ExecPolicy::kOnceMirrorFd);
}

TEST(RoleTransforms, UidVariationRegistersOnlyTheUidRole) {
  const variants::UidVariation variation;
  EXPECT_FALSE(variation.role_transform(ArgRole::kUid, 0).has_value());  // identity variant
  const auto transform = variation.role_transform(ArgRole::kUid, 1);
  ASSERT_TRUE(transform.has_value());
  EXPECT_EQ(transform->invert(0x7FFFFFFF), 0u);
  EXPECT_EQ(transform->reexpress(0), 0x7FFFFFFFu);
  EXPECT_FALSE(variation.role_transform(ArgRole::kFd, 1).has_value());
  EXPECT_FALSE(variation.role_transform(ArgRole::kPath, 1).has_value());
}

}  // namespace
}  // namespace nv
